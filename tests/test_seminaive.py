"""The shared delta engine and the semi-naive materializer.

Covers the incremental layer extracted from the chase
(:mod:`repro.relational.delta`): plan-cache recompile policy (growth +
selectivity drift), anchored delta joins, generation windows — and its
Datalog consumer: per-component fixpoints (the recursive-view
regression the old single-pass evaluator got wrong), incremental
refresh, and the negation rebuild rule.
"""

import pytest

from repro.datalog.evaluate import SemanticDatabase, materialize, materialize_naive
from repro.datalog.program import ViewProgram
from repro.datalog.stratify import stratified_components
from repro.errors import RecursionError_
from repro.logic.atoms import Atom, Conjunction, NegatedConjunction
from repro.logic.terms import Constant, Variable
from repro.relational.delta import DeltaPlans, GenerationWindow, PlanCache
from repro.relational.instance import Instance
from repro.relational.schema import Schema

x, y, z = Variable("x"), Variable("y"), Variable("z")


def c(v):
    return Constant(v)


@pytest.fixture()
def edge_schema():
    schema = Schema("graph")
    schema.add_relation("Edge", [("src", "int"), ("dst", "int")])
    schema.add_relation("Node", [("id", "int")])
    return schema


def chain_instance(schema, length):
    instance = Instance(schema)
    for i in range(length):
        instance.add_row("Edge", i, i + 1)
    return instance


def tc_program(schema):
    """Transitive closure: the canonical positively-recursive view."""
    program = ViewProgram(schema)
    program.define(Atom("TC", (x, y)), Conjunction(atoms=(Atom("Edge", (x, y)),)))
    program.define(
        Atom("TC", (x, z)),
        Conjunction(atoms=(Atom("TC", (x, y)), Atom("Edge", (y, z)))),
    )
    return program


# ---------------------------------------------------------------------------
# The shared engine primitives
# ---------------------------------------------------------------------------


class TestGenerationWindow:
    def test_advance_returns_exactly_the_new_facts(self):
        instance = Instance()
        instance.add_row("R", 1)
        window = GenerationWindow(instance)
        instance.add_row("R", 2)
        instance.add_row("R", 3)
        assert {f.terms[0].value for f in window.advance()} == {1, 2, 3}
        # The window moved: nothing new yields an empty delta.
        assert window.advance() == set()
        instance.add_row("R", 4)
        assert {f.terms[0].value for f in window.advance()} == {4}

    def test_facts_inserted_mid_iteration_land_in_next_window(self):
        instance = Instance()
        window = GenerationWindow(instance)
        instance.add_row("R", 1)
        first = window.advance()
        instance.add_row("R", 2)  # after the advance: next window's fact
        assert {f.terms[0].value for f in first} == {1}
        assert {f.terms[0].value for f in window.advance()} == {2}


class TestDeltaPlans:
    def body(self):
        return Conjunction(atoms=(Atom("R", (x, y)), Atom("S", (y, z))))

    def test_delta_matches_require_a_delta_fact(self):
        instance = Instance()
        instance.add_row("R", 1, 2)
        instance.add_row("S", 2, 3)
        plans = DeltaPlans(self.body())
        new = Atom("R", (c(10), c(20)))
        instance.add(new)
        instance.add_row("S", 20, 30)
        delta = {new}
        found = plans.delta_matches(instance, delta)
        # Only the match through the delta fact; the old R(1,2)⋈S(2,3)
        # combination must not reappear.
        assert len(found) == 1
        assert found[0][x] == c(10)

    def test_delta_matches_deduplicate_across_anchors(self):
        instance = Instance()
        r_new, s_new = Atom("R", (c(1), c(2))), Atom("S", (c(2), c(3)))
        instance.add(r_new)
        instance.add(s_new)
        plans = DeltaPlans(self.body())
        found = plans.delta_matches(instance, {r_new, s_new})
        # Both atoms are anchors for the same match: one binding, not two.
        assert len(found) == 1

    def test_full_matches_and_exists(self):
        instance = Instance()
        instance.add_row("R", 1, 2)
        instance.add_row("S", 2, 3)
        plans = DeltaPlans(self.body())
        assert len(plans.matches(instance)) == 1
        assert plans.exists(instance)
        assert not plans.exists(Instance())


class TestPlanCacheRecompile:
    def test_plan_is_reused_while_statistics_hold(self):
        instance = Instance()
        for i in range(20):
            instance.add_row("R", i, i)
        cache = PlanCache()
        body = Conjunction(atoms=(Atom("R", (x, y)),))
        first = cache.plan("k", body, frozenset(), instance)
        again = cache.plan("k", body, frozenset(), instance)
        assert first is again

    def test_recompiles_on_size_doubling(self):
        instance = Instance()
        for i in range(20):
            instance.add_row("R", i, i)
        cache = PlanCache()
        body = Conjunction(atoms=(Atom("R", (x, y)),))
        first = cache.plan("k", body, frozenset(), instance)
        for i in range(100, 145):  # more than doubles the relation
            instance.add_row("R", i, i)
        assert cache.plan("k", body, frozenset(), instance) is not first

    def test_recompiles_on_selectivity_drift_without_doubling(self):
        instance = Instance()
        for i in range(64):
            instance.add_row("R", i, 0)  # column 1 constant: useless key
        instance.add_row("S", 0, 0)
        cache = PlanCache()
        # Two-atom body so a probe on a column subset exists: S binds y,
        # then R is probed on column 1 (bucket estimate 64/1 = 64).
        body = Conjunction(atoms=(Atom("R", (x, y)), Atom("S", (y, z))))
        first = cache.plan("k", body, frozenset(), instance)
        # Run the plan once so its probe indexes go live (the drift check
        # only reads O(1) statistics).
        list(first.bindings(instance))
        # Well under 2x growth in size, but column 1 turns near-unique:
        # the bucket estimate collapses 64 -> ~5, far past DRIFT_FACTOR,
        # so the join order deserves a rethink.
        for i in range(16):
            instance.add_row("R", 1000 + i, 100 + i)
        assert instance.size("R") < 2 * 64
        second = cache.plan("k", body, frozenset(), instance)
        assert second is not first


# ---------------------------------------------------------------------------
# Recursive views: the fixpoint regression
# ---------------------------------------------------------------------------


class TestRecursiveViews:
    def test_transitive_closure_reaches_fixpoint(self, edge_schema):
        """Regression: one pass per stratum derives only paths of length
        ≤ 2; the fixpoint must find *all* pairs of a length-6 chain."""
        program = tc_program(edge_schema)
        instance = chain_instance(edge_schema, 6)
        extent = materialize(program, instance).facts("TC")
        pairs = {(f.terms[0].value, f.terms[1].value) for f in extent}
        expected = {(i, j) for i in range(7) for j in range(i + 1, 7)}
        assert pairs == expected
        # The pair needing 6 applications of the recursive rule is the
        # one a bounded number of passes misses.
        assert (0, 6) in pairs

    def test_mutually_recursive_component(self, edge_schema):
        """Even/odd path length: a two-view recursive component."""
        program = ViewProgram(edge_schema)
        program.define(
            Atom("Odd", (x, y)), Conjunction(atoms=(Atom("Edge", (x, y)),))
        )
        program.define(
            Atom("Odd", (x, z)),
            Conjunction(atoms=(Atom("Even", (x, y)), Atom("Edge", (y, z)))),
        )
        program.define(
            Atom("Even", (x, z)),
            Conjunction(atoms=(Atom("Odd", (x, y)), Atom("Edge", (y, z)))),
        )
        instance = chain_instance(edge_schema, 5)
        extents = materialize(program, instance)
        odd = {(f.terms[0].value, f.terms[1].value) for f in extents.facts("Odd")}
        even = {(f.terms[0].value, f.terms[1].value) for f in extents.facts("Even")}
        assert odd == {(i, j) for i in range(6) for j in range(6) if (j - i) % 2 == 1 and j > i}
        assert even == {(i, j) for i in range(6) for j in range(6) if (j - i) % 2 == 0 and j > i}

    def test_matches_naive_reference(self, edge_schema):
        program = tc_program(edge_schema)
        instance = chain_instance(edge_schema, 8)
        assert materialize(program, instance) == materialize_naive(program, instance)

    def test_recursion_through_negation_rejected(self, edge_schema):
        program = ViewProgram(edge_schema)
        program.define(
            Atom("A", (x,)),
            Conjunction(
                atoms=(Atom("Node", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("A", (x,)),))),
                ),
            ),
        )
        with pytest.raises(RecursionError_):
            materialize(program, Instance())

    def test_recursion_through_double_negation(self, edge_schema):
        """Even-depth negation is monotone (¬¬P ≡ P) so the cycle is
        stratifiable — but delta anchoring cannot see facts arriving
        behind the double negation, so such rules must re-run in full.
        Regression for the semi-naive engine's fixpoint loop."""
        schema = Schema("dn")
        schema.add_relation("Seed", [("id", "int")])
        schema.add_relation("Base", [("id", "int")])
        schema.add_relation("Link", [("src", "int"), ("dst", "int")])
        program = ViewProgram(schema)
        program.define(Atom("V", (x,)), Conjunction(atoms=(Atom("Seed", (x,)),)))
        program.define(
            Atom("V", (x,)),
            Conjunction(
                atoms=(Atom("Base", (x,)),),
                negations=(
                    NegatedConjunction(
                        Conjunction(
                            negations=(
                                NegatedConjunction(
                                    Conjunction(atoms=(Atom("V2", (x,)),))
                                ),
                            )
                        )
                    ),
                ),
            ),
        )
        program.define(
            Atom("V2", (x,)),
            Conjunction(atoms=(Atom("V", (y,)), Atom("Link", (y, x)))),
        )
        instance = Instance(schema)
        instance.add_row("Seed", 1)
        instance.add_row("Link", 1, 2)
        instance.add_row("Link", 2, 3)
        instance.add_row("Base", 2)
        instance.add_row("Base", 3)
        fast = materialize(program, instance)
        slow = materialize_naive(program, instance)
        assert fast == slow
        # The chain needs two trips around the V -> V2 -> V cycle.
        assert {f.terms[0].value for f in fast.facts("V")} == {1, 2, 3}

    def test_negation_over_lower_recursive_stratum(self, edge_schema):
        """Unreachable = nodes with no incoming path from node 0."""
        program = tc_program(edge_schema)
        program.define(
            Atom("Unreachable", (x,)),
            Conjunction(
                atoms=(Atom("Node", (x,)),),
                negations=(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom("TC", (Constant(0), x)),))
                    ),
                ),
            ),
        )
        instance = chain_instance(edge_schema, 3)
        instance.add_row("Edge", 10, 11)  # disconnected component
        for node in (1, 2, 3, 10, 11):
            instance.add_row("Node", node)
        extent = materialize(program, instance).facts("Unreachable")
        assert {f.terms[0].value for f in extent} == {10, 11}


class TestStratifiedComponents:
    def test_singleton_components_in_dependency_order(self, edge_schema):
        program = ViewProgram(edge_schema)
        program.define(Atom("V1", (x,)), Conjunction(atoms=(Atom("Node", (x,)),)))
        program.define(Atom("V2", (x,)), Conjunction(atoms=(Atom("V1", (x,)),)))
        components = stratified_components(program)
        assert components.index(["V1"]) < components.index(["V2"])

    def test_recursive_group_is_one_component(self, edge_schema):
        program = tc_program(edge_schema)
        program.define(Atom("V", (x,)), Conjunction(atoms=(Atom("TC", (x, y)),)))
        components = stratified_components(program)
        assert ["TC"] in components
        assert components.index(["TC"]) < components.index(["V"])

    def test_negative_cycle_rejected(self, edge_schema):
        program = ViewProgram(edge_schema)
        program.define(
            Atom("A", (x,)),
            Conjunction(
                atoms=(Atom("Node", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("B", (x,)),))),
                ),
            ),
        )
        program.define(Atom("B", (x,)), Conjunction(atoms=(Atom("A", (x,)),)))
        with pytest.raises(RecursionError_):
            stratified_components(program)


# ---------------------------------------------------------------------------
# The incremental semantic database
# ---------------------------------------------------------------------------


class TestSemanticDatabase:
    def test_incremental_extension_matches_from_scratch(self, edge_schema):
        program = tc_program(edge_schema)
        database = SemanticDatabase(program, base=chain_instance(edge_schema, 3))
        database.add_fact(Atom("Edge", (c(3), c(4))))
        database.add_fact(Atom("Edge", (c(4), c(5))))
        database.refresh()
        scratch = materialize(program, chain_instance(edge_schema, 5))
        assert database.instance.facts("TC") == scratch.facts("TC")

    def test_refresh_is_lazy_and_idempotent(self, edge_schema):
        program = tc_program(edge_schema)
        database = SemanticDatabase(program, base=chain_instance(edge_schema, 3))
        before = database.instance.version
        database.refresh()
        database.refresh()
        assert database.instance.version == before

    def test_incremental_delta_is_cheaper_than_rebuild(self, edge_schema):
        """The semi-naive contract: one appended edge must not re-derive
        the whole closure (additions are counted via the version)."""
        program = tc_program(edge_schema)
        database = SemanticDatabase(program, base=chain_instance(edge_schema, 30))
        closure_size = database.instance.size("TC")
        database.add_fact(Atom("Edge", (c(100), c(101))))
        database.refresh()
        assert database.instance.size("TC") == closure_size + 1

    def test_negation_affected_stratum_is_rebuilt(self, edge_schema):
        program = ViewProgram(edge_schema)
        program.define(
            Atom("Isolated", (x,)),
            Conjunction(
                atoms=(Atom("Node", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("Edge", (x, y)),))),
                ),
            ),
        )
        instance = Instance(edge_schema)
        instance.add_row("Node", 1)
        instance.add_row("Node", 2)
        database = SemanticDatabase(program, base=instance)
        assert {f.terms[0].value for f in database.instance.facts("Isolated")} == {1, 2}
        # An inserted edge *removes* node 1 from the extent: insertion is
        # non-monotone through negation, so the stratum must rebuild.
        database.add_fact(Atom("Edge", (c(1), c(9))))
        database.refresh()
        assert {f.terms[0].value for f in database.instance.facts("Isolated")} == {2}

    def test_seeded_view_facts_survive_rebuilds(self, edge_schema):
        program = ViewProgram(edge_schema)
        program.define(
            Atom("Flagged", (x,)),
            Conjunction(
                atoms=(Atom("Node", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("Edge", (x, y)),))),
                ),
            ),
        )
        instance = Instance()
        instance.add_row("Node", 1)
        instance.add_row("Flagged", 99)  # caller-asserted view fact
        database = SemanticDatabase(program, base=instance)
        database.add_fact(Atom("Edge", (c(1), c(2))))  # forces a rebuild
        database.refresh()
        values = {f.terms[0].value for f in database.instance.facts("Flagged")}
        assert values == {99}

    def test_constant_rule_fires_without_body(self, edge_schema):
        program = ViewProgram(edge_schema)
        program.define(Atom("Marker", (Constant("v1"),)), Conjunction())
        database = SemanticDatabase(program, base=Instance())
        assert database.instance.facts("Marker") == frozenset(
            {Atom("Marker", (Constant("v1"),))}
        )
