"""Differential test: semi-naive materialization vs. the naive reference.

The semi-naive engine must not change a single view extent.  Mirroring
the PR 2 evaluator-equivalence suite, we sweep every scenario of the
default ``mixed`` corpus — all families, all sweep axes, 52 scenarios —
and require, for each view program the scenario carries (source and
target side):

* identical extents from :func:`materialize` (semi-naive fixpoint) and
  :func:`materialize_naive` (full re-evaluation until no change), and
* identical extents when the base facts arrive *incrementally* through
  a :class:`SemanticDatabase` in several batches instead of one cold
  materialization — the path the shared-verification plumbing uses.

A recursive transitive-closure program rides along as the case the old
single-pass evaluator got wrong (it either rejected recursion outright
or stopped after one pass, missing longer paths).
"""

import pytest

from repro.datalog.evaluate import (
    SemanticDatabase,
    materialize,
    materialize_naive,
)
from repro.pipeline import run_scenario

from corpus import pipeline_specs

CORPUS = pipeline_specs()


def _programs_and_instances(spec):
    """Every (program, instance) pair a scenario exercises."""
    built = spec.build()
    scenario, instance = built.scenario, built.instance
    pairs = []
    if scenario.source_views is not None:
        pairs.append((scenario.source_views, instance))
    if scenario.target_views is not None:
        outcome = run_scenario(scenario, instance, verify=False)
        if outcome.chase.ok:
            pairs.append((scenario.target_views, outcome.target))
    return pairs


@pytest.mark.parametrize("spec", CORPUS, ids=[s.label for s in CORPUS])
def test_seminaive_extents_match_naive_reference(spec):
    for program, instance in _programs_and_instances(spec):
        fast = materialize(program, instance, include_base=True)
        slow = materialize_naive(program, instance, include_base=True)
        assert fast == slow, spec.label


@pytest.mark.parametrize("spec", CORPUS, ids=[s.label for s in CORPUS])
def test_incremental_database_matches_cold_materialization(spec):
    for program, instance in _programs_and_instances(spec):
        facts = sorted(instance, key=str)
        database = SemanticDatabase(program)
        # Feed the base facts in three refresh batches: each refresh
        # must re-establish the exact fixpoint (including the negation
        # rebuild rule) the cold run computes in one go.
        third = max(1, len(facts) // 3)
        for start in range(0, len(facts), third):
            database.add_facts(facts[start : start + third])
            database.refresh()
        database.refresh()
        cold = materialize_naive(program, instance)
        for view in program.view_names():
            assert database.instance.facts(view) == cold.facts(view), (
                f"{spec.label}: view {view} diverges incrementally"
            )
