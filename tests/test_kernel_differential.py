"""Differential suite: columnar kernel vs the reference set-based kernel.

The columnar instance kernel replaces the chase's storage layer
wholesale — interned terms, struct-of-arrays columns, encoded join
probes, encoded match shipping.  Its correctness contract is that none
of that is observable: every scenario must chase to a *bit-identical*
outcome whichever kernel runs it, under every execution strategy.

Three layers enforce the contract:

* a corpus-wide sweep (every scenario of the default ``mixed`` corpus)
  comparing the columnar serial pipeline against the reference kernel;
* the same comparison with the columnar side sharded (``thread:2`` and
  ``process:2`` — the encoded enumerate phase and forked replicas
  replaying encoded fact/pool/null-map events);
* a Hypothesis property driving :func:`random_scenario` shapes through
  both kernels (pinned regression seeds stay as ``@example`` lines).

The signature includes the chase status and failure reason, the target
fingerprint, round/match/null counters and the per-round delta windows
— if a kernel diverges anywhere the paper's semantics can see, one of
these trips.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, example, given, settings

from repro.chase.engine import ChaseConfig
from repro.core.rewriter import rewrite
from repro.pipeline import run_rewritten, run_scenario
from repro.runtime.fingerprint import fingerprint_instance
from repro.scenarios.generators import random_scenario

from corpus import pipeline_specs

CORPUS = pipeline_specs()

REFERENCE = ChaseConfig(kernel="reference")

#: Columnar execution strategies that must match the reference kernel.
COLUMNAR_CONFIGS = [
    ("columnar-serial", ChaseConfig()),
    ("columnar-thread:2", ChaseConfig(parallelism="thread:2")),
    ("columnar-process:2", ChaseConfig(parallelism="process:2")),
]


def _signature(outcome):
    """Everything that must match across kernels and strategies."""
    return (
        outcome.chase.status,
        outcome.chase.failure_reason,
        fingerprint_instance(outcome.target),
        outcome.chase.scenarios_tried,
        outcome.chase.branch_selection,
        outcome.chase.stats.rounds,
        outcome.chase.stats.premise_matches,
        outcome.chase.stats.nulls_created,
        outcome.verification.ok if outcome.verification is not None else None,
    )


@pytest.mark.parametrize("spec", CORPUS, ids=[s.label for s in CORPUS])
def test_columnar_matches_reference_kernel_corpus_wide(spec):
    built = spec.build()
    rewritten = rewrite(built.scenario)
    reference = run_rewritten(
        built.scenario, rewritten, built.instance, config=REFERENCE
    )
    expected = _signature(reference)
    for label, config in COLUMNAR_CONFIGS:
        outcome = run_rewritten(
            built.scenario, rewritten, built.instance, config=config
        )
        assert _signature(outcome) == expected, f"{spec.label}: {label}"


def test_kernels_agree_on_delta_windows():
    """The encoded ``facts_since`` window decodes to the reference one.

    Chase both kernels over one scenario and compare the *final* target
    plus every relation's fact set — then replay a fresh chase and
    compare the decoded per-generation windows of the working columnar
    instance against the reference instance's, which pins the insertion
    -log semantics (dedup, tombstones, collapse rewrites) and not just
    the end state.
    """
    spec = CORPUS[0]
    built = spec.build()
    columnar = run_scenario(built.scenario, built.instance)
    reference = run_scenario(
        built.scenario, built.instance, config=REFERENCE
    )
    col_target, ref_target = columnar.target, reference.target
    assert fingerprint_instance(col_target) == fingerprint_instance(
        ref_target
    )
    relations = set(col_target.relations()) | set(ref_target.relations())
    for relation in sorted(relations):
        assert col_target.facts(relation) == ref_target.facts(relation), (
            relation
        )


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    negation=st.sampled_from([0.0, 0.4, 0.8]),
    union=st.sampled_from([0.0, 0.3, 0.6]),
    with_keys=st.booleans(),
)
# Pinned shapes mirroring the parallel-determinism property suite: a
# key egd over a unioned+negated view and a negation-heavy rewriting.
@example(seed=7, negation=0.8, union=0.6, with_keys=True)
@example(seed=42, negation=0.4, union=0.3, with_keys=True)
@example(seed=1312, negation=0.8, union=0.0, with_keys=False)
def test_generated_scenarios_chase_identically_across_kernels(
    seed, negation, union, with_keys
):
    generated = random_scenario(
        seed=seed,
        negation_probability=negation,
        union_probability=union,
        with_keys=with_keys,
        instance_rows=10,
    )
    rewritten = rewrite(generated.scenario)
    reference = run_rewritten(
        generated.scenario,
        rewritten,
        generated.instance,
        verify=True,
        config=REFERENCE,
    )
    columnar = run_rewritten(
        generated.scenario, rewritten, generated.instance, verify=True
    )
    assert _signature(columnar) == _signature(reference)
