"""Tests for the GROM rewriter — including the paper's e0 → d0 example."""

import pytest

from repro.core.rewriter import AUX_PREFIX, rewrite
from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.errors import UnsupportedViewError
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import DependencyKind, egd, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.schema import Schema

x, y, z = Variable("x"), Variable("y"), Variable("z")


def make_scenario(views, mappings, constraints=(), source_extra=(), target_extra=()):
    """A tiny scenario builder over S(a, b) -> T(a, b) / W(a)."""
    source_schema = Schema("src")
    source_schema.add_relation("S", [("a", "int"), ("b", "int")])
    for name, arity in source_extra:
        source_schema.add_relation(name, [(f"c{i}", "int") for i in range(arity)])
    target_schema = Schema("tgt")
    target_schema.add_relation("T", [("a", "int"), ("b", "int")])
    target_schema.add_relation("W", [("a", "int")])
    for name, arity in target_extra:
        target_schema.add_relation(name, [(f"c{i}", "int") for i in range(arity)])
    program = ViewProgram(target_schema)
    for head, body in views:
        program.define(head, body)
    return MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=list(mappings),
        target_views=program,
        target_constraints=list(constraints),
        name="mini",
    )


class TestConjunctiveUnfolding:
    """With conjunctive views the rewriting is classical view unfolding:
    tgds/egds in, tgds/egds out (the closure property of [1])."""

    def test_tgd_stays_tgd(self):
        views = [
            (Atom("V", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("V", (x,)),), name="m"
        )
        result = rewrite(make_scenario(views, [mapping]))
        assert not result.has_deds
        assert len(result.dependencies) == 1
        dependency = result.dependencies[0]
        assert dependency.kind is DependencyKind.TGD
        assert dependency.disjuncts[0].atoms[0].relation == "T"
        # The body's second position is existential (fresh).
        existentials = dependency.existential_variables(dependency.disjuncts[0])
        assert len(existentials) == 1

    def test_egd_stays_egd(self):
        views = [
            (Atom("V", (x, y)), Conjunction(atoms=(Atom("T", (x, y)),))),
        ]
        id1, id2, n = Variable("id1"), Variable("id2"), Variable("n")
        constraint = egd(
            Conjunction(atoms=(Atom("V", (id1, n)), Atom("V", (id2, n)))),
            (Equality(id1, id2),),
            name="key",
        )
        result = rewrite(make_scenario(views, [], [constraint]))
        assert not result.has_deds
        assert len(result.dependencies) == 1
        assert result.dependencies[0].kind is DependencyKind.EGD

    def test_multiple_view_layers(self):
        views = [
            (Atom("V1", (x, y)), Conjunction(atoms=(Atom("T", (x, y)),))),
            (Atom("V2", (x,)), Conjunction(atoms=(Atom("V1", (x, y)),))),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("V2", (x,)),), name="m"
        )
        result = rewrite(make_scenario(views, [mapping]))
        conclusion = result.dependencies[0].disjuncts[0]
        assert conclusion.atoms[0].relation == "T"

    def test_physical_target_atom_passthrough(self):
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x, y)),), name="m"
        )
        result = rewrite(make_scenario([], [mapping]))
        assert result.dependencies[0].disjuncts[0].atoms[0] == Atom("T", (x, y))


class TestRunningExample:
    def test_e0_becomes_the_paper_d0(self, rewritten):
        """The headline check: the key egd rewrites into d0 exactly."""
        deds = rewritten.deds()
        assert len(deds) == 1
        d0 = deds[0]
        assert d0.name == "e0"
        # Premise: two T_Product atoms joined on name.
        assert [a.relation for a in d0.premise.atoms] == ["T_Product", "T_Product"]
        assert d0.premise.atoms[0].terms[1] == d0.premise.atoms[1].terms[1]
        assert not d0.premise.negations
        # Three disjuncts: (id1 = id2) | T_Rating(_, id1, 0) | T_Rating(_, id2, 0).
        assert len(d0.disjuncts) == 3
        equality_disjunct = d0.disjuncts[0]
        assert equality_disjunct.equalities == (
            Equality(d0.premise.atoms[0].terms[0], d0.premise.atoms[1].terms[0]),
        )
        for disjunct, product_atom in zip(d0.disjuncts[1:], d0.premise.atoms):
            assert len(disjunct.atoms) == 1
            rating = disjunct.atoms[0]
            assert rating.relation == "T_Rating"
            assert rating.terms[1] == product_atom.terms[0]  # the product id
            assert rating.terms[2] == Constant(0)  # thumbs-down

    def test_mapping_kinds(self, rewritten):
        counts = rewritten.counts()
        assert counts["ded"] == 1
        assert counts["denial"] == 2
        assert counts["tgd"] == 7
        assert "egd" not in counts

    def test_popular_requires_no_thumbs_down_denial(self, rewritten):
        """m2's companion: a popular product must not have a 0-rating."""
        denials = [d for d in rewritten.denials() if d.name.startswith("m2")]
        assert len(denials) == 1
        denial = denials[0]
        relations = [a.relation for a in denial.premise.atoms]
        assert "S_Product" in relations
        assert "T_Rating" in relations
        rating_atom = next(
            a for a in denial.premise.atoms if a.relation == "T_Rating"
        )
        assert rating_atom.terms[2] == Constant(0)

    def test_average_requires_thumbs_down_tgd(self, rewritten):
        """m1's companion (¬Popular): an average product needs a 0-rating."""
        companions = [d for d in rewritten.tgds() if d.name.startswith("m1.")]
        assert len(companions) == 1
        conclusion = companions[0].disjuncts[0].atoms
        assert conclusion[0].relation == "T_Rating"
        assert conclusion[0].terms[2] == Constant(0)

    def test_unpopular_double_negation_yields_tgd_and_denial(self, rewritten):
        """m0's ¬Avg: 'if it has a thumbs-up it must be popular' compiles to
        a tgd asserting Popular's positive part plus a denial forbidding a
        0-rating in that context."""
        names = {d.name for d in rewritten.dependencies}
        assert "m0.g0" in names  # the requirement tgd
        assert "m0.g0.g0" in names  # its nested denial
        assert "m0.g1" in names  # ¬Popular: needs a 0-rating

    def test_no_auxiliary_relations_needed(self, rewritten):
        """The running example's deds have base-level branches only."""
        assert rewritten.aux_arities == {}

    def test_provenance_tracked(self, rewritten):
        d0 = rewritten.deds()[0]
        info = rewritten.provenance[d0.name]
        assert info.origin == "e0"
        assert "PopularProduct" in info.views

    def test_problematic_views_highlighting(self, rewritten):
        assert rewritten.problematic_views() == ["PopularProduct"]

    def test_without_key_no_deds(self, rewritten_no_key):
        assert not rewritten_no_key.has_deds
        assert rewritten_no_key.problematic_views() == []

    def test_all_outputs_safe_and_base_level(self, rewritten, running_scenario):
        physical = set(running_scenario.source_schema.relation_names())
        physical |= set(running_scenario.target_schema.relation_names())
        for dependency in rewritten.dependencies:
            dependency.check_safety()
            assert dependency.relations() <= physical
            assert not dependency.premise.negations


class TestUnionViewsInConclusions:
    def test_union_conclusion_becomes_ded(self):
        views = [
            (Atom("U", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
            (Atom("U", (x,)), Conjunction(atoms=(Atom("W", (x,)),))),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("U", (x,)),), name="m"
        )
        result = rewrite(make_scenario(views, [mapping]))
        assert result.has_deds
        ded = result.deds()[0]
        assert len(ded.disjuncts) == 2
        branch_relations = {d.atoms[0].relation for d in ded.disjuncts}
        assert branch_relations == {"T", "W"}

    def test_union_branch_with_negation_uses_aux_relation(self):
        views = [
            (Atom("U", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
            (
                Atom("U", (x,)),
                Conjunction(
                    atoms=(Atom("W", (x,)),),
                    negations=(
                        NegatedConjunction(
                            Conjunction(atoms=(Atom("T", (x, x)),))
                        ),
                    ),
                ),
            ),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("U", (x,)),), name="m"
        )
        result = rewrite(make_scenario(views, [mapping]))
        assert result.has_deds
        assert len(result.aux_arities) == 1
        aux_name = next(iter(result.aux_arities))
        assert aux_name.startswith(AUX_PREFIX)
        # The aux relation appears in a ded branch, has a defining tgd and
        # a guard denial.
        ded = result.deds()[0]
        branch_relations = {d.atoms[0].relation for d in ded.disjuncts}
        assert aux_name in branch_relations
        definers = [
            d
            for d in result.tgds()
            if any(a.relation == aux_name for a in d.premise.atoms)
        ]
        guards = [
            d
            for d in result.denials()
            if any(a.relation == aux_name for a in d.premise.atoms)
        ]
        assert definers and guards


class TestComparisons:
    def test_view_comparison_on_frontier_kept(self):
        views = [
            (
                Atom("V", (x, y)),
                Conjunction(
                    atoms=(Atom("T", (x, y)),),
                    comparisons=(Comparison(">", y, Constant(0)),),
                ),
            ),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Atom("V", (x, y)),),
            name="m",
        )
        result = rewrite(make_scenario(views, [mapping]))
        disjunct = result.dependencies[0].disjuncts[0]
        assert disjunct.comparisons == (Comparison(">", y, Constant(0)),)

    def test_view_equality_on_existential_substituted(self):
        views = [
            (
                Atom("V", (x,)),
                Conjunction(
                    atoms=(Atom("T", (x, y)),),
                    comparisons=(Comparison("=", y, Constant(7)),),
                ),
            ),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, z)),)), (Atom("V", (x,)),), name="m"
        )
        result = rewrite(make_scenario(views, [mapping]))
        disjunct = result.dependencies[0].disjuncts[0]
        assert disjunct.atoms[0].terms[1] == Constant(7)
        assert not disjunct.comparisons

    def test_order_comparison_on_existential_rejected(self):
        views = [
            (
                Atom("V", (x,)),
                Conjunction(
                    atoms=(Atom("T", (x, y)),),
                    comparisons=(Comparison("<", y, Constant(7)),),
                ),
            ),
        ]
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, z)),)), (Atom("V", (x,)),), name="m"
        )
        with pytest.raises(UnsupportedViewError):
            rewrite(make_scenario(views, [mapping]))

    def test_unsatisfiable_premise_comparison_drops_dependency(self):
        mapping = tgd(
            Conjunction(
                atoms=(Atom("S", (x, y)),),
                comparisons=(Comparison("<", Constant(3), Constant(1)),),
            ),
            (Atom("T", (x, y)),),
            name="m",
        )
        result = rewrite(make_scenario([], [mapping]))
        assert result.dependencies == []

    def test_true_ground_premise_comparison_removed(self):
        mapping = tgd(
            Conjunction(
                atoms=(Atom("S", (x, y)),),
                comparisons=(Comparison("<", Constant(1), Constant(3)),),
            ),
            (Atom("T", (x, y)),),
            name="m",
        )
        result = rewrite(make_scenario([], [mapping]))
        assert len(result.dependencies) == 1
        assert not result.dependencies[0].premise.comparisons


class TestConstraintVariants:
    def negated_view(self):
        return [
            (
                Atom("V", (x,)),
                Conjunction(
                    atoms=(Atom("T", (x, y)),),
                    negations=(
                        NegatedConjunction(Conjunction(atoms=(Atom("W", (x,)),))),
                    ),
                ),
            ),
        ]

    def test_denial_over_negated_view_becomes_tgd(self):
        """P ∧ ¬N → ⊥ is equivalent to P → N: a plain tgd, no ded."""
        from repro.logic.dependencies import denial

        constraint = denial(
            Conjunction(atoms=(Atom("V", (x,)),)), name="no_v"
        )
        result = rewrite(make_scenario(self.negated_view(), [], [constraint]))
        assert not result.has_deds
        kinds = {d.kind for d in result.dependencies}
        assert kinds == {DependencyKind.TGD}
        conclusion = result.dependencies[0].disjuncts[0]
        assert conclusion.atoms[0].relation == "W"

    def test_egd_over_negated_view_becomes_ded(self):
        id1, id2 = Variable("id1"), Variable("id2")
        constraint = egd(
            Conjunction(atoms=(Atom("V", (id1,)), Atom("V", (id2,)))),
            (Equality(id1, id2),),
            name="k",
        )
        result = rewrite(make_scenario(self.negated_view(), [], [constraint]))
        assert result.has_deds
        assert len(result.deds()[0].disjuncts) == 3

    def test_union_view_in_constraint_premise_splits(self):
        views = [
            (Atom("U", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
            (Atom("U", (x,)), Conjunction(atoms=(Atom("W", (x,)),))),
        ]
        id1, id2 = Variable("id1"), Variable("id2")
        constraint = egd(
            Conjunction(atoms=(Atom("U", (id1,)), Atom("U", (id2,)))),
            (Equality(id1, id2),),
            name="k",
        )
        result = rewrite(make_scenario(views, [], [constraint]))
        # 2 x 2 premise combinations -> four egds.
        assert len(result.egds()) == 4
        assert not result.has_deds

    def test_duplicate_names_made_unique(self):
        views = [
            (Atom("U", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
            (Atom("U", (x,)), Conjunction(atoms=(Atom("W", (x,)),))),
        ]
        id1, id2 = Variable("id1"), Variable("id2")
        constraint = egd(
            Conjunction(atoms=(Atom("U", (id1,)), Atom("U", (id2,)))),
            (Equality(id1, id2),),
            name="k",
        )
        result = rewrite(make_scenario(views, [], [constraint]))
        names = [d.name for d in result.dependencies]
        assert len(names) == len(set(names))


class TestSourceViews:
    def build(self):
        source_schema = Schema("src")
        source_schema.add_relation("S", [("a", "int"), ("b", "int")])
        target_schema = Schema("tgt")
        target_schema.add_relation("T", [("a", "int"), ("b", "int")])
        source_views = ViewProgram(source_schema)
        source_views.define(
            Atom("SV", (x,)),
            Conjunction(
                atoms=(Atom("S", (x, y)),),
                negations=(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom("S", (x, Constant(0))),))
                    ),
                ),
            ),
        )
        mapping = tgd(
            Conjunction(atoms=(Atom("SV", (x,)),)), (Atom("T", (x, x)),), name="m"
        )
        return MappingScenario(
            source_schema=source_schema,
            target_schema=target_schema,
            mappings=[mapping],
            source_views=source_views,
            name="with-source-views",
        )

    def test_default_keeps_view_premise(self):
        result = rewrite(self.build())
        premise_relations = result.dependencies[0].premise.relations()
        assert "SV" in premise_relations

    def test_unfolded_premise_keeps_source_negation(self):
        result = rewrite(self.build(), unfold_source_premises=True)
        dependency = result.dependencies[0]
        assert "SV" not in dependency.premise.relations()
        assert dependency.premise.negations  # source-side NEC stays
        assert dependency.premise.negations[0].inner.relations() == frozenset(
            {"S"}
        )
