"""Full-system integration tests: the paper's Section 2, end to end.

These tests walk the complete Figure-2 architecture on the running
example and assert the *semantics* of every stage: the rewritten
dependency set, the chase behaviour branch by branch, and the final
classification the semantic schema exposes over the produced target.
"""


from repro.chase.ded import GreedyDedChase
from repro.chase.disjunctive import disjunctive_chase
from repro.chase.engine import StandardChase
from repro.chase.universal import satisfies
from repro.core.verify import verify_solution
from repro.datalog.evaluate import view_extent
from repro.logic.pretty import render_dependencies, render_dependency
from repro.pipeline import run_scenario
from repro.relational.instance import Instance
from repro.scenarios.running_example import (
    build_scenario,
    generate_source_instance,
)


class TestPaperWorkflow:
    """Follow the demo step by step."""

    def test_step1_rewriting_shape(self, rewritten):
        """Σ_ST ∪ Σ_T: 7 tgds, 2 denials, 1 ded (d0) for the example."""
        assert len(rewritten.dependencies) == 10
        rendered = render_dependencies(rewritten.dependencies, unicode=False)
        assert "T_Rating" in rendered
        # d0 appears with its three branches.
        d0 = rewritten.deds()[0]
        text = render_dependency(d0, unicode=False)
        assert text.count("|") == 2

    def test_step2_chase_produces_expected_rows(
        self, rewritten, small_source
    ):
        engine = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        )
        result = engine.run(small_source)
        assert result.ok
        target = result.target
        # 3 products * (1 classification row + 1 SoldAt row via m3).
        assert target.size("T_Product") == 6
        # average product needs a thumbs-up + thumbs-down; unpopular needs
        # a thumbs-down: 3 rating rows.
        assert target.size("T_Rating") == 3
        assert target.size("T_Store") == 3
        up = [f for f in target.facts("T_Rating") if f.terms[2].value == 1]
        down = [f for f in target.facts("T_Rating") if f.terms[2].value == 0]
        assert len(up) == 1 and len(down) == 2

    def test_step3_solution_satisfies_rewritten_set(
        self, rewritten, small_source
    ):
        engine = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        )
        result = engine.run(small_source)
        working = Instance()
        for fact in small_source:
            working.add(fact)
        for fact in result.target:
            working.add(fact)
        assert satisfies(rewritten.dependencies, working)

    def test_step4_view_extents_classify_correctly(
        self, running_scenario, small_source
    ):
        outcome = run_scenario(running_scenario, small_source)
        extents = view_extent(running_scenario.target_views, outcome.target)
        assert {a.terms[0].value for a in extents["PopularProduct"]} == {1}
        assert {a.terms[0].value for a in extents["AvgProduct"]} == {2}
        assert {a.terms[0].value for a in extents["UnpopularProduct"]} == {3}
        assert len(extents["Product"]) >= 3
        assert len(extents["Store"]) == 3  # one null-keyed store per product

    def test_step5_verification_contract(self, running_scenario, small_source):
        outcome = run_scenario(running_scenario, small_source)
        report = verify_solution(
            running_scenario, small_source, outcome.target
        )
        assert report.ok
        assert report.mappings_checked == 4
        assert report.constraints_checked == 1


class TestKeyConstraintBehaviour:
    """e0/d0 behaviour across data shapes (Section 3's discussion)."""

    def test_unique_names_never_fire_d0(self, rewritten):
        source = generate_source_instance(products=12, seed=21)
        result = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        ).run(source)
        assert result.ok and result.scenarios_tried == 1

    def test_popular_vs_unpopular_same_name_is_fine(self, rewritten):
        source = generate_source_instance(
            products=0, seed=2, benign_name_pairs=1
        )
        result = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        ).run(source)
        # The unpopular twin has a thumbs-down: d0's third disjunct is
        # satisfied, so the ded never fires.
        assert result.ok and result.stats.premise_matches > 0

    def test_two_popular_same_name_unsatisfiable_everywhere(self, rewritten):
        source = generate_source_instance(
            products=0, seed=2, popular_name_conflicts=1
        )
        greedy = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        ).run(source)
        assert not greedy.ok
        exact = disjunctive_chase(
            rewritten.dependencies, source, rewritten.source_relations()
        )
        assert not exact.satisfiable

    def test_same_ids_same_name_satisfiable(self, rewritten):
        """Two rows with the same id and name: e0's equality is trivially
        satisfied."""
        from repro.scenarios.running_example import build_source_schema

        source = Instance(build_source_schema())
        source.add_row("S_Store", "s", "loc")
        source.add_row("S_Product", 1, "same", "s", 5)
        source.add_row("S_Product", 1, "same", "s", 4)
        result = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        ).run(source)
        assert result.ok


class TestDedFreeVariant:
    def test_standard_chase_suffices_without_key(
        self, rewritten_no_key, medium_source
    ):
        engine = StandardChase(
            rewritten_no_key.dependencies, rewritten_no_key.source_relations()
        )
        result = engine.run(medium_source)
        assert result.ok
        assert result.target.size("T_Product") > 0

    def test_pipeline_picks_standard_engine(self, medium_source):
        outcome = run_scenario(build_scenario(include_key=False), medium_source)
        assert outcome.ok
        assert outcome.chase.scenarios_tried == 0  # no greedy search happened


class TestScale:
    def test_medium_instance_end_to_end(self):
        source = generate_source_instance(products=200, stores=10, seed=13)
        outcome = run_scenario(build_scenario(), source, verify=True)
        assert outcome.ok
        assert outcome.verification is not None and outcome.verification.ok
        assert outcome.target.size("T_Product") == 2 * 200
