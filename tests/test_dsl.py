"""Tests for the scenario DSL: lexer, parser, serializer, round-trips."""

import pytest

from repro.dsl.lexer import TokenKind, tokenize
from repro.dsl.parser import parse_dependency, parse_rule_body, parse_scenario
from repro.dsl.serializer import (
    serialize_dependency,
    serialize_instance,
    serialize_scenario,
)
from repro.errors import ParseError
from repro.logic.atoms import Comparison
from repro.logic.dependencies import DependencyKind
from repro.logic.terms import Constant, Variable


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize('R(x, 1, "a") -> y != 2.5 .')
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.INT,
            TokenKind.COMMA,
            TokenKind.STRING,
            TokenKind.RPAREN,
            TokenKind.ARROW,
            TokenKind.IDENT,
            TokenKind.OP,
            TokenKind.FLOAT,
            TokenKind.DOT,
            TokenKind.EOF,
        ]

    def test_comments_ignored(self):
        tokens = tokenize("// comment\nR(x) # another\n-- third\n")
        assert [t.kind for t in tokens][:2] == [TokenKind.IDENT, TokenKind.LPAREN]

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1 and tokens[1].line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("R(x) @ y")
        assert "line 1" in str(excinfo.value)

    def test_negative_numbers(self):
        tokens = tokenize("-3 -2.5")
        assert tokens[0].kind == TokenKind.INT and tokens[0].text == "-3"
        assert tokens[1].kind == TokenKind.FLOAT

    def test_defines_vs_le(self):
        tokens = tokenize("<- <=")
        assert tokens[0].kind == TokenKind.DEFINES
        assert tokens[1].kind == TokenKind.DEFINES  # disambiguated by parser


class TestDependencyParsing:
    def test_tgd(self):
        dependency = parse_dependency("m: S(x, y), x < 2 -> T(x).")
        assert dependency.name == "m"
        assert dependency.kind is DependencyKind.TGD
        assert dependency.premise.comparisons[0].op == "<"

    def test_egd(self):
        dependency = parse_dependency("e: V(x, n), V(y, n) -> x = y.")
        assert dependency.kind is DependencyKind.EGD

    def test_denial(self):
        dependency = parse_dependency("d: T(x, x) -> false.")
        assert dependency.kind is DependencyKind.DENIAL

    def test_ded_with_pipes(self):
        dependency = parse_dependency(
            "d0: T(x, n), T(y, n) -> x = y | R(z, x) | R(z, y)."
        )
        assert dependency.kind is DependencyKind.DED
        assert len(dependency.disjuncts) == 3

    def test_le_comparison_in_premise(self):
        dependency = parse_dependency("m: S(x), x <= 3 -> T(x).")
        assert dependency.premise.comparisons[0] == Comparison(
            "<=", Variable("x"), Constant(3)
        )

    def test_string_and_bool_constants(self):
        dependency = parse_dependency('m: S(x, "hi", true) -> T(x).')
        terms = dependency.premise.atoms[0].terms
        assert terms[1] == Constant("hi")
        assert terms[2] == Constant(True)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("m: S(x) -> T(x). extra")


class TestRuleBodyParsing:
    def test_negated_atom(self):
        body = parse_rule_body("A(x), not B(x)")
        assert len(body.negations) == 1
        assert body.negations[0].inner.atoms[0].relation == "B"

    def test_negated_conjunction(self):
        body = parse_rule_body("A(x), not (B(x, y), C(y))")
        assert len(body.negations[0].inner.atoms) == 2

    def test_nested_negation(self):
        body = parse_rule_body("A(x), not (B(x), not C(x))")
        inner = body.negations[0].inner
        assert inner.negations[0].inner.atoms[0].relation == "C"


class TestScenarioDocuments:
    DOC = """
    source schema src {
        S(a int, b string).
    }
    target schema tgt {
        T(a int, b string) key(a).
        U(a int).
    }
    target views {
        v: V(x) <- T(x, y), not U(x).
    }
    mappings {
        m: S(x, y) -> V(x).
    }
    constraints {
        e: V(x), V(y) -> x = y.
    }
    instance source {
        S(1, "one").
        S(2, "two").
    }
    """

    def test_full_document(self):
        document = parse_scenario(self.DOC)
        scenario = document.scenario
        assert scenario.source_schema.arity("S") == 2
        assert scenario.target_schema.relation("T").key == ("a",)
        assert scenario.target_views is not None
        assert scenario.target_views.view_names() == ["V"]
        assert [m.name for m in scenario.mappings] == ["m"]
        assert [c.name for c in scenario.target_constraints] == ["e"]
        assert document.source_instance is not None
        assert len(document.source_instance) == 2
        assert document.target_instance is None

    def test_missing_schema_rejected(self):
        with pytest.raises(ParseError):
            parse_scenario("mappings { }")

    def test_non_ground_fact_rejected(self):
        bad = self.DOC.replace('S(1, "one").', "S(1, oops).")
        with pytest.raises(ParseError):
            parse_scenario(bad)

    def test_bad_instance_side_rejected(self):
        with pytest.raises(ParseError):
            parse_scenario(
                "source schema s { S(a). } target schema t { T(a). } "
                "instance middle { }"
            )

    def test_parse_errors_carry_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_scenario("source schema s {\n  S(a int,\n}")
        assert excinfo.value.line >= 2


class TestRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: __import__(
                "repro.scenarios", fromlist=["build_scenario"]
            ).build_scenario(),
            lambda: __import__(
                "repro.scenarios", fromlist=["cleanup_scenario"]
            ).cleanup_scenario(),
            lambda: __import__(
                "repro.scenarios", fromlist=["evolution_scenario"]
            ).evolution_scenario(with_soft_delete=True),
            lambda: __import__(
                "repro.scenarios", fromlist=["partition_scenario"]
            ).partition_scenario(3, default_key=True),
            lambda: __import__(
                "repro.scenarios", fromlist=["flagged_scenario"]
            ).flagged_scenario(2),
        ],
        ids=["running", "cleanup", "evolution", "partition", "flagged"],
    )
    def test_serialize_parse_serialize_stable(self, factory):
        scenario = factory()
        text = serialize_scenario(scenario)
        document = parse_scenario(text)
        again = serialize_scenario(document.scenario)
        assert text == again

    def test_round_trip_preserves_rewriting(self):
        from repro.core.rewriter import rewrite
        from repro.logic.pretty import render_dependencies
        from repro.scenarios import build_scenario

        original = rewrite(build_scenario())
        document = parse_scenario(serialize_scenario(build_scenario()))
        reparsed = rewrite(document.scenario)
        assert render_dependencies(original.dependencies) == render_dependencies(
            reparsed.dependencies
        )

    def test_instance_round_trip(self):
        from repro.scenarios import build_scenario, generate_source_instance

        scenario = build_scenario()
        source = generate_source_instance(products=6, seed=2)
        text = serialize_scenario(scenario, source_instance=source)
        document = parse_scenario(text)
        assert document.source_instance == source

    def test_dependency_round_trip(self):
        text = "d0: T(x, n), T(y, n) -> x = y | R(z, x, 0) | R(z, y, 0)."
        dependency = parse_dependency(text)
        assert serialize_dependency(dependency) == text

    def test_serialize_null_rejected(self):
        from repro.logic.atoms import Atom
        from repro.logic.terms import Null
        from repro.relational.instance import Instance

        instance = Instance()
        instance.add(Atom("T", (Null(1),)))
        with pytest.raises(ValueError):
            serialize_instance(instance, "target")
