"""DSL round-tripping, property-style: ``parse(serialize(s))`` must be
*fingerprint-identical* to ``s`` for every generated scenario family.

This is the correctness bedrock of the content-addressed rewrite cache:
fingerprints are computed from the serializer, so if serialization lost
or mangled content, a cache hit could replay the wrong rewriting.
"""

from __future__ import annotations

import pytest

from repro.dsl.parser import parse_scenario
from repro.dsl.serializer import serialize_scenario
from repro.runtime.fingerprint import (
    canonical_scenario,
    fingerprint_instance,
    fingerprint_scenario,
)
from repro.scenarios.generators import build_family

FAMILY_CASES = [
    ("running", {}),
    ("running", {"include_key": False, "products": 5}),
    ("cleanup", {"orders": 10}),
    ("flagged", {"flags": 1, "products": 6}),
    ("flagged", {"flags": 3, "products": 6, "name_pairs": 2}),
    ("evolution", {"employees": 8}),
    ("evolution", {"with_soft_delete": True, "employees": 8}),
    ("partition", {"width": 2, "items": 8}),
    ("partition", {"width": 4, "default_key": True, "items": 8}),
    ("partition", {"width": 3, "class_keys": True, "items": 8}),
]
FAMILY_CASES += [("random", {"seed": seed}) for seed in range(15)]
FAMILY_CASES += [
    ("random", {"seed": 50, "negation_probability": 1.0, "union_probability": 1.0}),
    ("random", {"seed": 51, "relations": 4, "views": 6, "mappings": 6}),
]


def _case_id(case) -> str:
    family, params = case
    inside = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{family}({inside})"


@pytest.mark.parametrize("case", FAMILY_CASES, ids=_case_id)
def test_parse_of_serialize_is_fingerprint_identical(case):
    family, params = case
    generated = build_family(family, **params)
    document = parse_scenario(serialize_scenario(generated.scenario))
    assert fingerprint_scenario(document.scenario) == fingerprint_scenario(
        generated.scenario
    ), (
        "round-trip drifted; canonical diff:\n"
        f"{canonical_scenario(generated.scenario)}\nvs\n"
        f"{canonical_scenario(document.scenario)}"
    )


@pytest.mark.parametrize("case", FAMILY_CASES, ids=_case_id)
def test_embedded_instance_round_trips(case):
    family, params = case
    generated = build_family(family, **params)
    text = serialize_scenario(
        generated.scenario, source_instance=generated.instance
    )
    document = parse_scenario(text)
    assert document.source_instance is not None
    assert fingerprint_instance(document.source_instance) == fingerprint_instance(
        generated.instance
    )


def test_double_round_trip_is_stable():
    """serialize ∘ parse reaches a fixpoint after one round."""
    generated = build_family("flagged", flags=2, products=6)
    once = serialize_scenario(parse_scenario(
        serialize_scenario(generated.scenario)
    ).scenario)
    twice = serialize_scenario(parse_scenario(once).scenario)
    assert once == twice
