"""Unit tests for atoms, comparisons, equalities and conjunctions."""

import pytest

from repro.errors import LogicError, TypingError
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.terms import Constant, Null, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestAtom:
    def test_terms_tuple_coerced(self):
        atom = Atom("R", [x, Constant(1)])
        assert isinstance(atom.terms, tuple)
        assert atom.arity == 2

    def test_empty_relation_rejected(self):
        with pytest.raises(LogicError):
            Atom("", [x])

    def test_ground(self):
        assert Atom("R", [Constant(1), Null(1)]).is_ground()
        assert not Atom("R", [Constant(1), x]).is_ground()

    def test_extractors(self):
        atom = Atom("R", [x, Constant(1), Null(2), x])
        assert list(atom.variables()) == [x, x]
        assert list(atom.constants()) == [Constant(1)]
        assert list(atom.nulls()) == [Null(2)]

    def test_str(self):
        assert str(Atom("R", [x, Constant("a")])) == "R(x, 'a')"

    def test_equality_and_hash(self):
        assert Atom("R", [x]) == Atom("R", (x,))
        assert len({Atom("R", [x]), Atom("R", [x])}) == 1


class TestComparison:
    def test_unknown_operator_rejected(self):
        with pytest.raises(LogicError):
            Comparison("~", x, y)

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("!=", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_numeric_evaluation(self, op, left, right, expected):
        comparison = Comparison(op, Constant(left), Constant(right))
        assert comparison.evaluate() is expected

    def test_string_ordering(self):
        assert Comparison("<", Constant("a"), Constant("b")).evaluate()

    def test_int_float_mix(self):
        assert Comparison("<", Constant(1), Constant(1.5)).evaluate()

    def test_incomparable_types_raise(self):
        with pytest.raises(TypingError):
            Comparison("<", Constant("a"), Constant(1)).evaluate()

    def test_not_ground_raises(self):
        with pytest.raises(TypingError):
            Comparison("=", x, Constant(1)).evaluate()

    def test_null_equality_by_identity(self):
        assert Comparison("=", Null(1), Null(1)).evaluate()
        assert Comparison("!=", Null(1), Null(2)).evaluate()
        assert not Comparison("=", Null(1), Constant(1)).evaluate()

    def test_null_ordering_raises(self):
        with pytest.raises(TypingError):
            Comparison("<", Null(1), Constant(2)).evaluate()

    def test_negated(self):
        assert Comparison("<", x, y).negated() == Comparison(">=", x, y)
        assert Comparison("=", x, y).negated() == Comparison("!=", x, y)
        roundtrip = Comparison("<=", x, y).negated().negated()
        assert roundtrip == Comparison("<=", x, y)

    def test_variables(self):
        assert set(Comparison("<", x, Constant(2)).variables()) == {x}


class TestEquality:
    def test_trivial(self):
        assert Equality(x, x).is_trivial()
        assert not Equality(x, y).is_trivial()

    def test_variables(self):
        assert set(Equality(x, Constant(1)).variables()) == {x}

    def test_str(self):
        assert str(Equality(x, y)) == "x = y"


class TestConjunction:
    def atom(self, name="R", terms=(x, y)):
        return Atom(name, terms)

    def test_empty_is_true(self):
        assert Conjunction().is_empty()
        assert str(Conjunction()) == "true"

    def test_positive_variables_vs_all(self):
        body = Conjunction(
            atoms=(Atom("R", (x,)),),
            comparisons=(Comparison("<", x, y),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("S", (z,)),))),
            ),
        )
        assert body.positive_variables() == frozenset({x})
        assert body.variables() == frozenset({x, y, z})

    def test_negation_depth(self):
        flat = Conjunction(atoms=(self.atom(),))
        assert flat.negation_depth() == 0
        one = Conjunction(negations=(NegatedConjunction(flat),))
        assert one.negation_depth() == 1
        two = Conjunction(negations=(NegatedConjunction(one),))
        assert two.negation_depth() == 2

    def test_relations_recursive(self):
        body = Conjunction(
            atoms=(Atom("A", (x,)),),
            negations=(
                NegatedConjunction(
                    Conjunction(
                        atoms=(Atom("B", (x,)),),
                        negations=(
                            NegatedConjunction(
                                Conjunction(atoms=(Atom("C", (x,)),))
                            ),
                        ),
                    )
                ),
            ),
        )
        assert body.relations() == frozenset({"A", "B", "C"})

    def test_constants_recursive(self):
        body = Conjunction(
            atoms=(Atom("A", (Constant(1),)),),
            comparisons=(Comparison("<", x, Constant(2)),),
            negations=(
                NegatedConjunction(
                    Conjunction(atoms=(Atom("B", (Constant(3),)),))
                ),
            ),
        )
        assert body.constants() == frozenset(
            {Constant(1), Constant(2), Constant(3)}
        )

    def test_extend_preserves_order(self):
        first = Conjunction(atoms=(Atom("A", (x,)),))
        second = Conjunction(atoms=(Atom("B", (y,)),))
        combined = first.extend(second)
        assert [a.relation for a in combined.atoms] == ["A", "B"]

    def test_is_positive(self):
        assert Conjunction(atoms=(self.atom(),)).is_positive()
        negated = Conjunction(
            negations=(NegatedConjunction(Conjunction(atoms=(self.atom(),))),)
        )
        assert not negated.is_positive()


class TestNegatedConjunction:
    def test_local_variables(self):
        inner = Conjunction(atoms=(Atom("R", (x, y)),))
        negation = NegatedConjunction(inner)
        assert negation.local_variables([x]) == frozenset({y})
        assert negation.local_variables([x, y]) == frozenset()

    def test_str(self):
        inner = Conjunction(atoms=(Atom("R", (x,)),))
        assert str(NegatedConjunction(inner)) == "not (R(x))"
