"""Shared fixtures: the paper's running example and small instances.

Also registers the hypothesis profiles the property suites run under:

* ``dev`` (default) — a quick pass for the local tier-1 suite;
* ``ci`` — more examples, derandomized so every CI run checks the same
  example set (a red CI run is reproducible by definition);
* ``deep`` — the ``make fuzz`` profile: many examples, fresh randomness
  each run, for actually *finding* new failing seeds (which then get
  pinned as ``@example`` lines in the test files).

Select one with ``HYPOTHESIS_PROFILE=<name>``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core.rewriter import rewrite

settings.register_profile(
    "dev",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "deep",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.core.scenario import MappingScenario
from repro.relational.instance import Instance
from repro.scenarios.running_example import (
    build_scenario,
    build_source_schema,
    build_target_views,
    generate_source_instance,
)


@pytest.fixture(scope="session")
def running_scenario() -> MappingScenario:
    return build_scenario()


@pytest.fixture(scope="session")
def running_scenario_no_key() -> MappingScenario:
    return build_scenario(include_key=False)


@pytest.fixture(scope="session")
def rewritten(running_scenario):
    return rewrite(running_scenario)


@pytest.fixture(scope="session")
def rewritten_no_key(running_scenario_no_key):
    return rewrite(running_scenario_no_key)


@pytest.fixture()
def small_source() -> Instance:
    """Three products: one popular (5), one average (3), one unpopular (0)."""
    schema = build_source_schema()
    instance = Instance(schema)
    instance.add_row("S_Store", "acme", "rome")
    instance.add_row("S_Product", 1, "alpha", "acme", 5)
    instance.add_row("S_Product", 2, "beta", "acme", 3)
    instance.add_row("S_Product", 3, "gamma", "acme", 0)
    return instance


@pytest.fixture(scope="session")
def target_views():
    return build_target_views()


@pytest.fixture()
def medium_source() -> Instance:
    return generate_source_instance(products=30, stores=4, seed=11)
