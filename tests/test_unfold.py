"""Unit tests for polarity-aware view expansion (unfolding)."""

import pytest

from repro.core.unfold import expand_atom, expand_conjunction, expand_negation
from repro.datalog.program import ViewProgram
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    NegatedConjunction,
)
from repro.logic.terms import Constant, Variable, VariableFactory
from repro.relational.schema import Schema

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture()
def schema():
    out = Schema("base")
    out.add_relation("A", [("u", "int"), ("v", "int")])
    out.add_relation("B", [("u", "int")])
    out.add_relation("C", [("u", "int")])
    return out


@pytest.fixture()
def factory():
    return VariableFactory(prefix="f")


class TestBaseAtoms:
    def test_base_atom_passthrough(self, schema, factory):
        branches = expand_atom(Atom("A", (x, y)), None, factory)
        assert len(branches) == 1
        assert branches[0].conjunction.atoms == (Atom("A", (x, y)),)

    def test_base_atom_with_program(self, schema, factory):
        program = ViewProgram(schema)
        branches = expand_atom(Atom("A", (x, y)), program, factory)
        assert len(branches) == 1
        assert branches[0].provenance == ()


class TestConjunctiveViews:
    def test_classic_unfolding(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x,)), Conjunction(atoms=(Atom("A", (x, y)), Atom("B", (y,))))
        )
        branches = expand_atom(Atom("V", (z,)), program, factory)
        assert len(branches) == 1
        conjunction = branches[0].conjunction
        assert len(conjunction.atoms) == 2
        # Head variable x is replaced by the actual argument z.
        assert conjunction.atoms[0].terms[0] == z
        # The body-local y is standardized apart (not literally `y`).
        local = conjunction.atoms[0].terms[1]
        assert local != y
        assert conjunction.atoms[1].terms[0] == local
        assert branches[0].provenance == ("V",)

    def test_nested_views(self, schema, factory):
        program = ViewProgram(schema)
        program.define(Atom("V1", (x,)), Conjunction(atoms=(Atom("B", (x,)),)))
        program.define(Atom("V2", (x,)), Conjunction(atoms=(Atom("V1", (x,)),)))
        branches = expand_atom(Atom("V2", (z,)), program, factory)
        assert len(branches) == 1
        assert branches[0].conjunction.atoms == (Atom("B", (z,)),)
        assert branches[0].provenance == ("V2", "V1")

    def test_union_views_multiply(self, schema, factory):
        program = ViewProgram(schema)
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("B", (x,)),)))
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("C", (x,)),)))
        branches = expand_atom(Atom("U", (z,)), program, factory)
        assert len(branches) == 2
        relations = {b.conjunction.atoms[0].relation for b in branches}
        assert relations == {"B", "C"}

    def test_comparisons_carried(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x,)),
            Conjunction(
                atoms=(Atom("A", (x, y)),),
                comparisons=(Comparison("<", y, Constant(5)),),
            ),
        )
        branches = expand_atom(Atom("V", (z,)), program, factory)
        comparison = branches[0].conjunction.comparisons[0]
        assert comparison.op == "<"
        assert comparison.right == Constant(5)

    def test_head_constant_matches_constant(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x, Constant(1))), Conjunction(atoms=(Atom("B", (x,)),))
        )
        hit = expand_atom(Atom("V", (z, Constant(1))), program, factory)
        assert len(hit) == 1 and not hit[0].conjunction.comparisons
        miss = expand_atom(Atom("V", (z, Constant(2))), program, factory)
        assert miss == []

    def test_head_constant_against_variable_becomes_comparison(
        self, schema, factory
    ):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x, Constant(1))), Conjunction(atoms=(Atom("B", (x,)),))
        )
        branches = expand_atom(Atom("V", (z, y)), program, factory)
        assert len(branches) == 1
        comparison = branches[0].conjunction.comparisons[0]
        assert comparison == Comparison("=", y, Constant(1))

    def test_repeated_head_variable(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x, x)), Conjunction(atoms=(Atom("A", (x, x)),))
        )
        branches = expand_atom(Atom("V", (y, z)), program, factory)
        assert len(branches) == 1
        # y and z must be equated.
        assert Comparison("=", y, z) in branches[0].conjunction.comparisons


class TestNegation:
    def test_negated_base_atom(self, schema, factory):
        negation = NegatedConjunction(Conjunction(atoms=(Atom("B", (x,)),)))
        necs, provenance = expand_negation(negation, None, factory)
        assert len(necs) == 1
        assert provenance == ()

    def test_negated_view_inlines_body(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x,)), Conjunction(atoms=(Atom("A", (x, y)), Atom("B", (y,))))
        )
        negation = NegatedConjunction(Conjunction(atoms=(Atom("V", (z,)),)))
        necs, provenance = expand_negation(negation, program, factory)
        assert len(necs) == 1
        assert len(necs[0].inner.atoms) == 2
        assert "V" in provenance

    def test_negated_union_gives_one_nec_per_branch(self, schema, factory):
        program = ViewProgram(schema)
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("B", (x,)),)))
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("C", (x,)),)))
        negation = NegatedConjunction(Conjunction(atoms=(Atom("U", (z,)),)))
        necs, _provenance = expand_negation(negation, program, factory)
        assert len(necs) == 2

    def test_negated_view_with_negation_nests(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x,)),
            Conjunction(
                atoms=(Atom("B", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("C", (x,)),))),
                ),
            ),
        )
        negation = NegatedConjunction(Conjunction(atoms=(Atom("V", (z,)),)))
        necs, _provenance = expand_negation(negation, program, factory)
        assert len(necs) == 1
        inner = necs[0].inner
        assert inner.atoms == (Atom("B", (z,)),)
        assert len(inner.negations) == 1
        assert inner.negations[0].inner.atoms == (Atom("C", (z,)),)


class TestConjunctionExpansion:
    def test_product_of_unions(self, schema, factory):
        program = ViewProgram(schema)
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("B", (x,)),)))
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("C", (x,)),)))
        body = Conjunction(atoms=(Atom("U", (y,)), Atom("U", (z,))))
        branches = expand_conjunction(body, program, factory)
        assert len(branches) == 4

    def test_empty_expansion_propagates(self, schema, factory):
        program = ViewProgram(schema)
        program.define(
            Atom("V", (x, Constant(1))), Conjunction(atoms=(Atom("B", (x,)),))
        )
        body = Conjunction(
            atoms=(Atom("V", (y, Constant(2))), Atom("B", (y,)))
        )
        assert expand_conjunction(body, program, factory) == []

    def test_running_example_unpopular_depth(self, target_views, factory):
        """UnpopularProduct expands into the triple-nested NEC structure."""
        pid, n = Variable("pid"), Variable("n")
        branches = expand_conjunction(
            Conjunction(atoms=(Atom("UnpopularProduct", (pid, n)),)),
            target_views,
            factory,
        )
        assert len(branches) == 1
        conjunction = branches[0].conjunction
        assert [a.relation for a in conjunction.atoms] == ["T_Product"]
        # Two NECs: not Avg, not Popular.
        assert len(conjunction.negations) == 2
        depths = sorted(n.inner.negation_depth() for n in conjunction.negations)
        # not Popular nests one level (its body holds a NEC);
        # not Avg nests two (its body holds not Popular).
        assert depths == [1, 2]
        assert set(branches[0].provenance) >= {
            "UnpopularProduct",
            "AvgProduct",
            "PopularProduct",
        }
