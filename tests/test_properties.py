"""Property-based tests (hypothesis) for core invariants.

The key system-level property is the paper's soundness contract:
whenever the rewritten scenario chases to success, the produced target
satisfies the original semantic scenario.  Below it sit structural
invariants of the pieces: substitution algebra, homomorphism
composition, instance null-rewriting, unfolding equivalence for
conjunctive views, and chase universality.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.rewriter import rewrite
from repro.logic.atoms import Atom
from repro.logic.homomorphism import (
    apply_assignment,
    exists_homomorphism,
    find_homomorphism,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Null, Variable
from repro.pipeline import run_scenario
from repro.relational.instance import Instance
from repro.scenarios.generators import random_scenario
from repro.scenarios.running_example import build_scenario, generate_source_instance

# -- strategies --------------------------------------------------------------

variables = st.sampled_from([Variable(n) for n in "xyzuvw"])
constants = st.integers(min_value=0, max_value=5).map(Constant)
nulls = st.integers(min_value=1, max_value=5).map(Null)
terms = st.one_of(variables, constants, nulls)
ground_terms = st.one_of(constants, nulls)

atoms = st.builds(
    Atom,
    st.sampled_from(["R", "S", "T"]),
    st.lists(terms, min_size=1, max_size=3).map(tuple),
)
ground_atoms = st.builds(
    Atom,
    st.sampled_from(["R", "S", "T"]),
    st.lists(ground_terms, min_size=2, max_size=2).map(tuple),
)

substitutions = st.dictionaries(variables, ground_terms, max_size=4).map(
    Substitution
)


# -- substitution algebra ------------------------------------------------------


@given(substitutions, atoms)
def test_substitution_idempotent_on_ground_result(sub, atom):
    once = sub.apply_atom(atom)
    twice = sub.apply_atom(once)
    # Applying a ground-range substitution twice equals once.
    assert once == twice


@given(substitutions, substitutions, atoms)
def test_compose_is_sequential_application(first, second, atom):
    composed = first.compose(second)
    assert composed.apply_atom(atom) == second.apply_atom(first.apply_atom(atom))


@given(substitutions, st.lists(variables, max_size=3))
def test_restrict_is_subset(sub, keep):
    restricted = sub.restrict(keep)
    assert restricted.domain() <= sub.domain()
    for variable in restricted:
        assert restricted[variable] == sub[variable]


# -- homomorphisms -----------------------------------------------------------------


@given(st.lists(ground_atoms, max_size=6))
def test_identity_homomorphism_exists(facts):
    assert exists_homomorphism(facts, facts)


@given(st.lists(ground_atoms, max_size=5), st.lists(ground_atoms, max_size=5))
def test_found_homomorphism_is_valid(source, target):
    assignment = find_homomorphism(source, target)
    if assignment is not None:
        target_set = set(target)
        for atom in source:
            assert apply_assignment(assignment, atom) in target_set


@given(
    st.lists(ground_atoms, max_size=4),
    st.lists(ground_atoms, max_size=4),
    st.lists(ground_atoms, max_size=4),
)
def test_homomorphism_composition(a, b, c):
    # hom(a->b) and hom(b->c) implies hom(a->c).
    if exists_homomorphism(a, b) and exists_homomorphism(b, c):
        assert exists_homomorphism(a, c)


@given(st.lists(ground_atoms, min_size=1, max_size=5))
def test_subset_maps_into_superset(facts):
    assert exists_homomorphism(facts[:-1], facts)


# -- instances ---------------------------------------------------------------------


@given(st.lists(ground_atoms, max_size=8))
def test_instance_set_semantics(facts):
    instance = Instance()
    for fact in facts:
        instance.add(fact)
    assert len(instance) == len(set(facts))


@given(st.lists(ground_atoms, max_size=8), st.dictionaries(nulls, constants, max_size=3))
def test_null_map_removes_mapped_nulls(facts, mapping):
    instance = Instance()
    for fact in facts:
        instance.add(fact)
    instance.apply_null_map(mapping)
    remaining = instance.nulls()
    assert remaining.isdisjoint(mapping.keys())


@given(st.lists(ground_atoms, max_size=8), st.dictionaries(nulls, constants, max_size=3))
def test_null_map_preserves_fact_count_upper_bound(facts, mapping):
    instance = Instance()
    for fact in facts:
        instance.add(fact)
    before = len(instance)
    instance.apply_null_map(mapping)
    assert len(instance) <= before  # collapse only, never growth


# -- unfolding equivalence ------------------------------------------------------------


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=30))
def test_conjunctive_unfolding_preserves_semantics(seed):
    """For conjunctive views (no negation, no unions), evaluating the
    unfolded mapping premise against the *base* instance agrees with
    evaluating the original premise against the materialized views —
    the classical unfolding-correctness statement."""
    generated = random_scenario(
        seed=seed,
        negation_probability=0.0,
        union_probability=0.0,
        with_keys=False,
    )
    scenario = generated.scenario
    # Move the views to the *source* side to compare premise evaluation:
    # here we instead check conclusions via the pipeline (cheaper):
    outcome = run_scenario(scenario, generated.instance)
    assert outcome.ok
    # Verification already checks mapping satisfaction over materialized
    # views — the equivalence statement for conclusions.
    assert outcome.verification is not None and outcome.verification.ok


# -- end-to-end soundness ------------------------------------------------------------


@settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=200))
def test_rewrite_chase_soundness(seed):
    """The paper's soundness contract on randomized scenarios: a
    successful chase of the rewritten dependencies yields a solution of
    the original semantic scenario."""
    generated = random_scenario(
        seed=seed,
        negation_probability=0.5,
        union_probability=0.3,
        with_keys=(seed % 2 == 0),
    )
    outcome = run_scenario(generated.scenario, generated.instance)
    if outcome.ok:
        assert outcome.verification is not None
        assert outcome.verification.ok


@settings(deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=100))
def test_running_example_soundness_across_instances(seed):
    scenario = build_scenario()
    source = generate_source_instance(
        products=8 + seed % 7, seed=seed, benign_name_pairs=seed % 3
    )
    outcome = run_scenario(scenario, source)
    assert outcome.ok
    assert outcome.verification is not None and outcome.verification.ok


@settings(deadline=None, max_examples=10, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=50))
def test_chase_result_is_universal_among_reruns(seed):
    """Chasing the same scenario twice yields homomorphically equivalent
    targets (universal solutions are unique up to hom-equivalence)."""
    from repro.logic.homomorphism import homomorphically_equivalent

    generated = random_scenario(
        seed=seed, negation_probability=0.0, union_probability=0.0, with_keys=False
    )
    first = run_scenario(generated.scenario, generated.instance)
    second = run_scenario(generated.scenario, generated.instance)
    assert first.ok and second.ok
    assert homomorphically_equivalent(
        list(first.target), list(second.target)
    )


# -- analysis soundness ----------------------------------------------------------------


@settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=100))
def test_ded_prediction_soundness(seed):
    """predict_deds == False implies the rewriting is ded-free."""
    from repro.core.analysis import predict_deds

    generated = random_scenario(
        seed=seed,
        negation_probability=0.5,
        union_probability=0.4,
        with_keys=(seed % 3 == 0),
    )
    prediction = predict_deds(generated.scenario)
    result = rewrite(generated.scenario)
    if not prediction.may_have_deds:
        assert not result.has_deds
