"""Tests for the CLI, the report formatter and CSV instance IO."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null
from repro.relational.csv_io import load_instance, save_instance
from repro.relational.instance import Instance
from repro.reporting import Table, format_table
from repro.scenarios.running_example import (
    build_source_schema,
    build_scenario,
    generate_source_instance,
)
from repro.dsl.serializer import serialize_scenario


@pytest.fixture()
def scenario_file(tmp_path: Path) -> Path:
    text = serialize_scenario(
        build_scenario(),
        source_instance=generate_source_instance(products=6, seed=1),
    )
    path = tmp_path / "example.grom"
    path.write_text(text)
    return path


class TestCli:
    def test_analyze(self, scenario_file, capsys):
        assert main(["analyze", str(scenario_file)]) == 0
        out = capsys.readouterr().out
        assert "may produce deds: YES" in out
        assert "PopularProduct" in out

    def test_rewrite(self, scenario_file, capsys):
        assert main(["rewrite", str(scenario_file), "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "T_Rating" in out
        assert "deds present" in out

    def test_chase(self, scenario_file, capsys):
        assert main(["chase", str(scenario_file)]) == 0
        out = capsys.readouterr().out
        assert "chase:" in out and "verify:" in out and "OK" in out

    def test_chase_show_target(self, scenario_file, capsys):
        assert main(["chase", str(scenario_file), "--show-target"]) == 0
        assert "T_Product" in capsys.readouterr().out

    def test_chase_with_csv(self, scenario_file, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        save_instance(generate_source_instance(products=4, seed=2), csv_dir)
        assert main(["chase", str(scenario_file), "--csv", str(csv_dir)]) == 0

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "d0" in out or "T_Rating" in out

    def test_export_example_round_trips(self, tmp_path, capsys):
        target = tmp_path / "out.grom"
        assert main(["export-example", str(target)]) == 0
        assert main(["chase", str(target)]) == 0

    def test_chase_failure_exit_code(self, tmp_path):
        text = serialize_scenario(
            build_scenario(),
            source_instance=generate_source_instance(
                products=2, seed=1, popular_name_conflicts=1
            ),
        )
        path = tmp_path / "bad.grom"
        path.write_text(text)
        assert main(["chase", str(path)]) == 1


class TestReporting:
    def test_format_table_alignment(self):
        rendered = format_table(
            ["name", "value"],
            [["long-name", 1], ["x", 123456]],
            title="Demo",
        )
        lines = rendered.splitlines()
        assert lines[0] == "Demo"
        assert "long-name" in rendered
        # Numbers right-aligned within the column.
        assert lines[-1].endswith("123456")

    def test_cell_rendering(self):
        rendered = format_table(
            ["a"], [[None], [True], [False], [0.12345], [1234.5]]
        )
        assert "-" in rendered
        assert "yes" in rendered and "no" in rendered
        assert "0.1234" in rendered or "0.1235" in rendered

    def test_table_accumulator(self, capsys):
        table = Table("T", ["x"])
        table.add(1)
        table.add(2)
        table.print()
        out = capsys.readouterr().out
        assert "T" in out and "1" in out and "2" in out


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        schema = build_source_schema()
        instance = generate_source_instance(products=5, seed=3)
        save_instance(instance, tmp_path / "data")
        loaded = load_instance(schema, tmp_path / "data")
        assert loaded == instance

    def test_nulls_round_trip(self, tmp_path):
        from repro.relational.schema import Schema

        schema = Schema("s")
        schema.add_relation("R", [("a", "any"), ("b", "any")])
        instance = Instance(schema)
        instance.add(Atom("R", (Constant(1), Null(7, "hint"))))
        save_instance(instance, tmp_path / "d")
        loaded = load_instance(schema, tmp_path / "d")
        fact = next(iter(loaded.facts("R")))
        assert fact.terms[1] == Null(7)

    def test_missing_files_skipped(self, tmp_path):
        schema = build_source_schema()
        (tmp_path / "d").mkdir()
        loaded = load_instance(schema, tmp_path / "d")
        assert len(loaded) == 0

    def test_header_mismatch_rejected(self, tmp_path):
        from repro.errors import SchemaError

        schema = build_source_schema()
        directory = tmp_path / "d"
        directory.mkdir()
        (directory / "S_Store.csv").write_text("wrong,header\n1,2\n")
        with pytest.raises(SchemaError):
            load_instance(schema, directory)

    def test_schemaless_save_rejected(self, tmp_path):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            save_instance(Instance(), tmp_path / "d")
