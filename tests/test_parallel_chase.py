"""Differential suite for the parallel chase: sharded == serial, always.

The sharded chase's contract is *bit-identical* results: whatever the
sharder (threads, forked replica processes, or the serial fallback),
the produced instances, null resolutions, failure reasons and counters
must match the serial chase exactly.  These tests sweep the scenario
corpus — including disjunctive (ded) and failing scenarios — through
every mode and compare, plus unit-test the sharding machinery itself
(worker budget, fallbacks, replica-event bookkeeping, trigger-memory
spill under the parallel path).
"""

import multiprocessing
import os

import pytest

from repro.chase.ded import GreedyDedChase
from repro.chase.engine import ChaseConfig, StandardChase
from repro.chase.parallel import (
    MatchSharder,
    ProcessSharder,
    ThreadSharder,
    chase_worker_budget,
    create_sharder,
    effective_parallelism,
    parse_parallelism,
)
from repro.core.rewriter import rewrite
from repro.core.verify import ScenarioVerifier
from repro.errors import ChaseError
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import tgd
from repro.logic.terms import Constant, Variable
from repro.pipeline import run_rewritten
from repro.relational.instance import Instance, ProbeView
from repro.runtime.corpus import get_corpus

from corpus import (
    BLOOM_SPILL,
    chase_cases,
    dense_pair_instance as _dense_pair_instance,
)

MODES = ["thread:2", "process:2"]

x, y, z = Variable("x"), Variable("y"), Variable("z")


def _run_case(setup, mode=None):
    """Chase a corpus case under a parallelism mode (None = serial)."""
    config = setup.config or ChaseConfig()
    if mode is not None:
        from dataclasses import replace

        config = replace(config, parallelism=mode)
    dependencies = list(setup.dependencies)
    if any(d.is_ded() for d in dependencies):
        engine = GreedyDedChase(
            dependencies, setup.source_relations, config
        )
    else:
        engine = StandardChase(dependencies, setup.source_relations, config)
    return engine.run(setup.instance)


def _compare_results(serial, other, mode):
    assert other.status == serial.status, mode
    assert other.target == serial.target, mode
    assert other.failure_reason == serial.failure_reason, mode
    assert other.stats.nulls_created == serial.stats.nulls_created, mode
    assert other.stats.premise_matches == serial.stats.premise_matches, mode
    assert other.stats.rounds == serial.stats.rounds, mode
    assert other.stats.egd_unifications == serial.stats.egd_unifications, mode


class TestCorpusDifferential:
    """Every smoke-corpus scenario, every mode, identical pipelines."""

    @pytest.mark.parametrize(
        "spec", list(get_corpus("smoke")), ids=lambda s: s.label
    )
    def test_smoke_corpus_modes_agree(self, spec):
        built = spec.build()
        rewritten = rewrite(built.scenario)
        baseline = run_rewritten(
            built.scenario, rewritten, built.instance, verify=True
        )
        for mode in MODES:
            outcome = run_rewritten(
                built.scenario,
                rewritten,
                built.instance,
                verify=True,
                config=ChaseConfig(parallelism=mode),
            )
            _compare_results(baseline.chase, outcome.chase, mode)
            assert outcome.target == baseline.target, mode
            assert outcome.ok == baseline.ok, mode
            if baseline.verification is not None:
                assert (
                    outcome.verification.ok == baseline.verification.ok
                ), mode

    @pytest.mark.parametrize("mode", MODES)
    def test_disjunctive_sweep_agrees(self, mode):
        # flagged scenarios rewrite to deds -> the greedy branch search;
        # name pairs put failure pressure on early selections.
        from repro.runtime.corpus import spec as make_spec

        spec = make_spec("flagged", flags=2, products=12, name_pairs=2, seed=1)
        built = spec.build()
        rewritten = rewrite(built.scenario)
        baseline = run_rewritten(
            built.scenario, rewritten, built.instance, verify=True
        )
        outcome = run_rewritten(
            built.scenario,
            rewritten,
            built.instance,
            verify=True,
            config=ChaseConfig(parallelism=mode),
        )
        _compare_results(baseline.chase, outcome.chase, mode)
        assert outcome.chase.scenarios_tried == baseline.chase.scenarios_tried


class TestChaseCaseDifferential:
    """Every registered chase case (failing, recursive, disjunctive,
    Bloom-spill) produces identical results under every sharder."""

    @pytest.mark.parametrize(
        "case", chase_cases(), ids=lambda c: c.label
    )
    @pytest.mark.parametrize("mode", MODES)
    def test_sharded_matches_serial(self, case, mode):
        serial = _run_case(case.build())
        case.check_baseline(serial)  # the case still bites
        sharded = _run_case(case.build(), mode)
        _compare_results(serial, sharded, f"{case.label}/{mode}")
        if "failing" in case.flags:
            assert not serial.ok, case.label
        if "disjunctive" in case.flags:
            assert sharded.scenarios_tried == serial.scenarios_tried
            assert sharded.branch_selection == serial.branch_selection


class TestTriggerMemoryUnderParallelism:
    @pytest.mark.parametrize("mode", ["serial"] + MODES)
    def test_bloom_spill_matches_serial(self, mode):
        from dataclasses import replace

        [case] = chase_cases(require={BLOOM_SPILL})
        setup = case.build()
        config = replace(setup.config, parallelism=mode)
        engine = StandardChase(
            list(setup.dependencies), setup.source_relations, config
        )
        result = engine.run(setup.instance)
        assert result.ok
        memory = engine._trigger_memory
        assert memory.exact_size == 5
        assert memory.spilled > 0  # the Bloom tier engaged
        if mode == "serial":
            TestTriggerMemoryUnderParallelism._baseline = (
                result.target,
                memory.spilled,
            )
        else:
            target, spilled = TestTriggerMemoryUnderParallelism._baseline
            assert result.target == target, mode
            assert memory.spilled == spilled, mode


class TestStableBloomProbes:
    def test_probes_independent_of_hash_randomization(self):
        # Which triggers collide in the Bloom spill must be identical
        # across interpreter runs, or two oblivious chases of the same
        # input could diverge once spilling starts.
        import subprocess
        import sys

        snippet = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.chase.engine import _TriggerMemory;"
            "from repro.logic.terms import Constant, Null;"
            "t = (3, (Constant('abc'), Null(7, 'hint'), Constant(42)));"
            "m = _TriggerMemory(0);"
            "print(m._probes(t))"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", snippet],
                env={"PYTHONHASHSEED": seed, "PATH": ""},
                cwd="/root/repo",
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for seed in ("0", "12345")
        }
        assert len(outputs) == 1

    def test_null_hint_excluded_like_equality(self):
        from repro.chase.engine import _TriggerMemory
        from repro.logic.terms import Null

        with_hint = (0, (Null(5, "a"),))
        other_hint = (0, (Null(5, "b"),))
        assert _TriggerMemory._stable_digest(with_hint) == (
            _TriggerMemory._stable_digest(other_hint)
        )


class TestSharderMachinery:
    def test_parse_parallelism_forms(self):
        assert parse_parallelism(None) == ("serial", 1)
        assert parse_parallelism("serial") == ("serial", 1)
        assert parse_parallelism("1") == ("serial", 1)
        assert parse_parallelism(4) == ("process", 4)
        assert parse_parallelism("3") == ("process", 3)
        assert parse_parallelism("thread:2") == ("thread", 2)
        assert parse_parallelism("process:6") == ("process", 6)
        assert parse_parallelism("THREAD:2") == ("thread", 2)
        assert parse_parallelism("process:1") == ("serial", 1)
        with pytest.raises(ChaseError):
            parse_parallelism("gpu:2")
        with pytest.raises(ChaseError):
            parse_parallelism("thread:lots")

    def test_chase_worker_budget_arithmetic(self):
        # jobs x chase workers never exceeds the cpu budget
        assert chase_worker_budget(jobs=1, requested=4, cpu_count=8) == 4
        assert chase_worker_budget(jobs=2, requested=4, cpu_count=8) == 4
        assert chase_worker_budget(jobs=4, requested=4, cpu_count=8) == 2
        assert chase_worker_budget(jobs=8, requested=4, cpu_count=8) == 1
        assert chase_worker_budget(jobs=3, requested=8, cpu_count=8) == 2
        assert chase_worker_budget(jobs=1, requested=2, cpu_count=1) == 1
        # degenerate inputs stay sane
        assert chase_worker_budget(jobs=0, requested=4, cpu_count=4) == 4
        assert chase_worker_budget(jobs=2, requested=0, cpu_count=8) == 1

    def test_effective_parallelism_caps_and_canonicalizes(self):
        assert effective_parallelism("process:4", jobs=1, cpu_count=8) == "process:4"
        assert effective_parallelism("process:4", jobs=4, cpu_count=8) == "process:2"
        assert effective_parallelism("process:4", jobs=8, cpu_count=8) == "serial"
        assert effective_parallelism("thread", jobs=2, cpu_count=4) == "thread:2"
        assert effective_parallelism("serial", jobs=1, cpu_count=8) == "serial"

    def test_create_sharder_modes(self):
        assert type(create_sharder("serial")) is MatchSharder
        thread = create_sharder("thread:2")
        assert isinstance(thread, ThreadSharder) and thread.workers == 2
        process = create_sharder("process:2")
        if "fork" in multiprocessing.get_all_start_methods():
            assert isinstance(process, ProcessSharder)
        else:
            assert isinstance(process, ThreadSharder)

    def test_daemonic_caller_degrades_to_threads(self, monkeypatch):
        class _Daemonic:
            daemon = True

        monkeypatch.setattr(
            multiprocessing, "current_process", lambda: _Daemonic()
        )
        sharder = create_sharder("process:3")
        assert isinstance(sharder, ThreadSharder)
        assert sharder.workers == 3

    def test_describe(self):
        assert MatchSharder().describe() == "serial"
        assert ThreadSharder(2).describe() == "thread:2"
        assert ProcessSharder(4).describe() == "process:4"

    def test_describe_reports_degradation(self):
        sharder = ProcessSharder(4)
        sharder._broken = True
        assert sharder.describe() == "serial (degraded from process:4)"

    def test_worker_death_degrades_to_serial(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        deps = [
            tgd(
                Conjunction(atoms=(Atom("S", (x, y)), Atom("R", (y, z)))),
                (Atom("T", (x, z)),),
                name="join",
            ),
        ]
        source = _dense_pair_instance()
        engine = StandardChase(deps, ("S", "R"))
        working = Instance()
        for fact in source:
            working.add(fact)
        working.bump_generation()
        sharder = ProcessSharder(2)
        sharder.begin_run(working, engine.compiled)
        try:
            for process in sharder._processes:
                process.terminate()
                process.join()
            sharder.begin_round(None, None)
            matches = sharder.enumerate_matches(0)
            assert sharder._broken
            serial = engine.compiled[0].premise_matches(working, None)
            assert sorted(
                tuple(sorted(b.items())) for b in matches
            ) == sorted(tuple(sorted(b.items())) for b in serial)
        finally:
            sharder.end_run()


class TestProbeView:
    def test_read_surface_delegates(self):
        instance = _dense_pair_instance(10)
        view = instance.probe_view()
        assert isinstance(view, ProbeView)
        assert len(view) == len(instance)
        assert view.size("S") == instance.size("S")
        assert set(view.facts("S")) == set(instance.facts("S"))
        assert view.relations() == instance.relations()
        assert view.key_count("S", (0,)) == instance.key_count("S", (0,))
        assert view.current_generation == instance.current_generation
        some_fact = next(iter(instance))
        assert some_fact in view
        assert view.index("S", (0,)) is instance.index("S", (0,))

    def test_no_mutation_surface(self):
        view = _dense_pair_instance(4).probe_view()
        for forbidden in ("add", "add_all", "remove", "apply_null_map",
                          "bump_generation"):
            assert not hasattr(view, forbidden)


class TestParallelVerifier:
    def test_report_identical_to_serial(self):
        spec_corpus = get_corpus("smoke")
        spec = list(spec_corpus)[0]
        built = spec.build()
        rewritten = rewrite(built.scenario)
        outcome = run_rewritten(
            built.scenario, rewritten, built.instance, verify=False
        )
        serial = ScenarioVerifier(built.scenario, built.instance).verify(
            outcome.target
        )
        threaded = ScenarioVerifier(
            built.scenario, built.instance, parallelism="thread:2"
        ).verify(outcome.target)
        assert threaded.ok == serial.ok
        assert threaded.mappings_checked == serial.mappings_checked
        assert threaded.constraints_checked == serial.constraints_checked
        assert threaded.premise_matches == serial.premise_matches
        assert [str(v) for v in threaded.violations] == [
            str(v) for v in serial.violations
        ]

    def test_violations_capped_like_serial(self):
        # An empty target violates every premise match; the violation
        # list caps identically in both modes.
        spec = list(get_corpus("smoke"))[0]
        built = spec.build()
        empty = Instance()
        serial = ScenarioVerifier(built.scenario, built.instance).verify(
            empty, max_violations=3
        )
        threaded = ScenarioVerifier(
            built.scenario, built.instance, parallelism="thread:3"
        ).verify(empty, max_violations=3)
        assert not serial.ok and not threaded.ok
        assert len(serial.violations) == len(threaded.violations) == 3
        assert [str(v) for v in threaded.violations] == [
            str(v) for v in serial.violations
        ]


@pytest.mark.skipif(os.cpu_count() is None, reason="cpu_count unavailable")
def test_chase_result_records_sharding():
    deps = [
        tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Atom("T", (x, y)),),
            name="copy",
        ),
    ]
    source = _dense_pair_instance(8)
    serial = StandardChase(deps, ("S", "R")).run(source)
    assert serial.sharding == "serial"
    threaded = StandardChase(
        deps, ("S", "R"), ChaseConfig(parallelism="thread:2")
    ).run(source)
    assert threaded.sharding == "thread:2"
