"""Tests for weak acyclicity and universal-solution utilities."""


from repro.chase.termination import (
    is_weakly_acyclic,
    position_graph,
    weak_acyclicity_report,
)
from repro.chase.universal import core_of, is_universal_for, satisfies, violations
from repro.logic.atoms import Atom, Conjunction, Equality
from repro.logic.dependencies import Disjunct, ded, egd, tgd
from repro.logic.terms import Constant, Null, Variable
from repro.relational.instance import Instance

x, y, z = Variable("x"), Variable("y"), Variable("z")


def c(v):
    return Constant(v)


class TestWeakAcyclicity:
    def test_copy_tgd_is_weakly_acyclic(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x, y)),)
        )
        assert is_weakly_acyclic([dependency])

    def test_self_growing_tgd_is_not(self):
        grow = tgd(
            Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("T", (y, z)),)
        )
        assert not is_weakly_acyclic([grow])
        ok, culprits = weak_acyclicity_report([grow])
        assert not ok and culprits

    def test_regular_cycle_alone_is_fine(self):
        # T(x, y) -> T(y, x): cycles, but with no existential edge.
        flip = tgd(Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("T", (y, x)),))
        assert is_weakly_acyclic([flip])

    def test_two_step_special_cycle(self):
        first = tgd(Conjunction(atoms=(Atom("A", (x,)),)), (Atom("B", (x, z)),))
        second = tgd(Conjunction(atoms=(Atom("B", (x, y)),)), (Atom("A", (y,)),))
        assert not is_weakly_acyclic([first, second])

    def test_ded_branches_each_count(self):
        dependency = ded(
            Conjunction(atoms=(Atom("T", (x, y)),)),
            (
                Disjunct(atoms=(Atom("U", (x,)),)),
                Disjunct(atoms=(Atom("T", (y, z)),)),  # the bad branch
            ),
        )
        assert not is_weakly_acyclic([dependency])

    def test_egds_and_denials_do_not_affect(self):
        key = egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("T", (x, z)))),
            (Equality(y, z),),
        )
        assert is_weakly_acyclic([key])

    def test_rewritten_running_example_weakly_acyclic(self, rewritten):
        assert is_weakly_acyclic(rewritten.dependencies)

    def test_position_graph_edges(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        graph = position_graph([dependency])
        assert (("S", 0), ("T", 0)) in graph.regular
        assert (("S", 0), ("T", 1)) in graph.special


class TestSatisfaction:
    def test_satisfies_and_violations(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),)
        )
        instance = Instance()
        instance.add_row("S", 1)
        assert not satisfies([dependency], instance)
        found = violations([dependency], instance)
        assert len(found) == 1
        instance.add_row("T", 1)
        assert satisfies([dependency], instance)

    def test_violations_limit(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),)
        )
        instance = Instance()
        for i in range(20):
            instance.add_row("S", i)
        assert len(violations([dependency], instance, limit=5)) == 5

    def test_egd_violation_detected(self):
        key = egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("T", (x, z)))),
            (Equality(y, z),),
        )
        instance = Instance()
        instance.add_row("T", 1, 10)
        instance.add_row("T", 1, 20)
        assert not satisfies([key], instance)

    def test_denial_violation_detected(self):
        from repro.logic.dependencies import denial

        block = denial(Conjunction(atoms=(Atom("T", (x, x)),)))
        instance = Instance()
        instance.add_row("T", 2, 2)
        assert not satisfies([block], instance)

    def test_nulls_satisfy_via_homomorphic_extension(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        instance = Instance()
        instance.add_row("S", 1)
        instance.add(Atom("T", (c(1), Null(5))))
        assert satisfies([dependency], instance)


class TestUniversality:
    def test_null_solution_universal_for_ground_ones(self):
        universal = Instance()
        universal.add(Atom("T", (c(1), Null(1))))
        specific = Instance()
        specific.add(Atom("T", (c(1), c(42))))
        assert is_universal_for(universal, [specific])
        assert not is_universal_for(specific, [universal])


class TestCore:
    def test_core_removes_redundant_null_fact(self):
        instance = Instance()
        instance.add(Atom("T", (c(1), c(2))))
        instance.add(Atom("T", (c(1), Null(1))))  # folds onto the ground fact
        core = core_of(instance)
        assert len(core) == 1
        assert Atom("T", (c(1), c(2))) in core

    def test_core_keeps_necessary_nulls(self):
        instance = Instance()
        instance.add(Atom("T", (c(1), Null(1))))
        core = core_of(instance)
        assert len(core) == 1

    def test_core_of_ground_instance_is_identity(self):
        instance = Instance()
        instance.add_row("T", 1, 2)
        instance.add_row("T", 3, 4)
        assert core_of(instance) == instance

    def test_core_folds_chains(self):
        # T(1, n1), T(n1, n2) with also T(1, 1): everything folds onto T(1,1).
        instance = Instance()
        instance.add(Atom("T", (c(1), c(1))))
        instance.add(Atom("T", (c(1), Null(1))))
        instance.add(Atom("T", (Null(1), Null(2))))
        core = core_of(instance)
        assert len(core) == 1

    def test_core_is_homomorphically_equivalent(self):
        from repro.logic.homomorphism import homomorphically_equivalent

        instance = Instance()
        instance.add(Atom("T", (c(1), Null(1))))
        instance.add(Atom("T", (c(1), Null(2))))
        instance.add(Atom("U", (Null(2),)))
        core = core_of(instance)
        assert homomorphically_equivalent(list(instance), list(core))
        assert len(core) == 2
