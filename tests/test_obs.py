"""Flight recorder: span tracer, metrics, JSONL format, profiling.

Covers the observability layer end to end: unit behaviour of the tracer
and registry, payload merging across workers (including the
completion-order parent remap), the JSONL schema round-trip, the phase
profiler's self-time arithmetic, trace determinism across parallel
tiers, and the overhead guard proving an untraced run never touches the
real instrumentation.
"""

import json

import pytest

from repro.chase.engine import ChaseConfig, StandardChase
from repro.obs.jsonl import (
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    read_trace,
    trace_records,
    write_trace,
)
from repro.obs.metrics import Histogram, MetricsRegistry, percentile
from repro.obs.profile import phase_metrics, profile_trace, render_profile
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    TraceConfig,
    resolve_recorder,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pipeline import run_scenario
from repro.runtime.cache import RewriteCache
from repro.runtime.executor import BatchOptions, run_batch
from repro.runtime.corpus import get_corpus
from repro.scenarios.running_example import (
    build_scenario,
    generate_source_instance,
)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        inner, outer = tracer.records
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["attrs"] == {"detail": 1}
        assert inner["end"] >= inner["start"]

    def test_completion_order_is_children_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r["name"] for r in tracer.records] == ["b", "a"]

    def test_exception_annotates_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.records[0]["attrs"]["error"] == "ValueError"

    def test_max_spans_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_add_raw_attaches_to_current_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.add_raw("leaf", 1.0, 2.0, worker="fork-0", matches=3)
        leaf = next(r for r in tracer.records if r["name"] == "leaf")
        parent = next(r for r in tracer.records if r["name"] == "parent")
        assert leaf["parent"] == parent["id"]
        assert leaf["worker"] == "fork-0"
        assert leaf["attrs"] == {"matches": 3}

    def test_merge_preserves_parents_despite_completion_order(self):
        # Records arrive children-first; the merge must still rebuild
        # the tree instead of re-rooting every span.
        child = Tracer(worker="main")
        with child.span("outer"):
            with child.span("inner"):
                pass
        parent = Tracer()
        with parent.span("host"):
            parent.merge_records(child.records, worker="branch-0")
        by_name = {r["name"]: r for r in parent.records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] == by_name["host"]["id"]
        # "main"-labelled spans get the caller's worker name; the ids
        # were re-assigned without collision.
        assert by_name["inner"]["worker"] == "branch-0"
        assert len({r["id"] for r in parent.records}) == 3

    def test_merge_keeps_specific_worker_labels(self):
        child = Tracer(worker="main")
        child.add_raw("enumerate.worker", 0.0, 1.0, worker="fork-3")
        parent = Tracer()
        parent.merge_records(child.records, worker="branch-1")
        assert parent.records[0]["worker"] == "fork-3"

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything") as span:
            span.annotate(ignored=True)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.records == []
        assert NULL_TRACER.add_raw("x", 0.0, 1.0) == -1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.count("hits")
        registry.count("hits", 2)
        registry.gauge("depth", 7)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 3
        assert snapshot["gauges"]["depth"] == 7

    def test_percentile_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile([5.0], 99) == 5.0

    def test_histogram_summary_and_merge(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        histogram.merge(
            {"count": 1, "sum": 10.0, "min": 10.0, "max": 10.0, "samples": [10.0]}
        )
        assert histogram.count == 5
        assert histogram.total == 20.0
        assert histogram.max == 10.0

    def test_merge_snapshot_adds_counters_overwrites_gauges(self):
        registry = MetricsRegistry()
        registry.count("n", 1)
        registry.gauge("g", 1)
        registry.merge_snapshot(
            {"counters": {"n": 2}, "gauges": {"g": 9}, "histograms": {}}
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["n"] == 3
        assert snapshot["gauges"]["g"] == 9


# ---------------------------------------------------------------------------
# Recorder resolution and payloads
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_resolution_precedence(self):
        explicit = FlightRecorder()
        assert resolve_recorder(explicit, None) is explicit
        assert resolve_recorder(None, None) is NULL_RECORDER
        assert resolve_recorder(None, TraceConfig(enabled=False)) is NULL_RECORDER
        built = resolve_recorder(None, TraceConfig(enabled=True))
        assert built.enabled and built is not NULL_RECORDER

    def test_payload_round_trip(self):
        recorder = FlightRecorder()
        with recorder.span("phase"):
            recorder.count("facts", 4)
        payload = recorder.to_payload()
        target = FlightRecorder()
        target.merge_payload(payload, worker="task-0")
        assert [r["name"] for r in target.tracer.records] == ["phase"]
        assert target.metrics.counter_value("facts") == 4

    def test_null_recorder_payload_is_none(self):
        assert NULL_RECORDER.to_payload() is None
        NULL_RECORDER.merge_payload({"spans": []})  # no-op, no error


# ---------------------------------------------------------------------------
# JSONL schema
# ---------------------------------------------------------------------------


class TestJsonl:
    def _recorder(self):
        recorder = FlightRecorder()
        with recorder.span("run"):
            with recorder.span("step", size=2):
                pass
            recorder.count("facts", 7)
            recorder.observe("latency", 0.25)
        return recorder

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_trace(path, self._recorder(), meta={"command": "test"})
        trace = read_trace(path)
        assert written == 1 + 2 + 1 + 1  # meta + spans + counter + histogram
        assert trace.meta["command"] == "test"
        assert trace.meta["version"] == TRACE_FORMAT_VERSION
        assert [s["name"] for s in trace.spans] == ["step", "run"]
        assert trace.counters == {"facts": 7}
        assert trace.histograms["latency"]["p50"] == 0.25

    def test_span_times_rebased_to_origin(self):
        records = trace_records(self._recorder())
        spans = [r for r in records if r["type"] == "span"]
        assert min(s["start"] for s in spans) == 0.0
        for span in spans:
            assert span["end"] >= span["start"] >= 0.0

    def test_meta_must_come_first(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "counter", "name": "x", "value": 1}))
        with pytest.raises(TraceFormatError, match="meta header"):
            read_trace(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "meta", "version": 999}))
        with pytest.raises(TraceFormatError, match="version"):
            read_trace(path)

    def test_span_ending_before_start_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = [
            json.dumps({"type": "meta", "version": TRACE_FORMAT_VERSION}),
            json.dumps(
                {
                    "type": "span",
                    "id": 0,
                    "parent": None,
                    "name": "x",
                    "start": 2.0,
                    "end": 1.0,
                    "worker": "main",
                }
            ),
        ]
        path.write_text("\n".join(lines))
        with pytest.raises(TraceFormatError, match="ends before"):
            read_trace(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = [
            json.dumps({"type": "meta", "version": TRACE_FORMAT_VERSION}),
            json.dumps({"type": "mystery"}),
        ]
        path.write_text("\n".join(lines))
        with pytest.raises(TraceFormatError, match="unknown record type"):
            read_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty trace"):
            read_trace(path)


# ---------------------------------------------------------------------------
# Profiling
# ---------------------------------------------------------------------------


class TestProfile:
    def _trace(self, tmp_path, recorder, meta=None):
        path = tmp_path / "trace.jsonl"
        write_trace(path, recorder, meta=meta)
        return read_trace(path)

    def test_self_time_subtracts_same_worker_children(self, tmp_path):
        recorder = FlightRecorder()
        tracer = recorder.tracer
        root = tracer.add_raw("root", 0.0, 10.0)
        tracer.add_raw("child", 1.0, 5.0, parent=root)
        trace = self._trace(tmp_path, recorder)
        report = profile_trace(trace)
        by_name = {p.name: p for p in report.phases}
        assert by_name["root"].self_time == pytest.approx(6.0)
        assert by_name["child"].self_time == pytest.approx(4.0)
        assert report.main_self_seconds == pytest.approx(10.0)

    def test_cross_worker_children_do_not_subtract(self, tmp_path):
        recorder = FlightRecorder()
        tracer = recorder.tracer
        root = tracer.add_raw("root", 0.0, 10.0)
        tracer.add_raw("fork.worker", 0.0, 8.0, worker="fork-0", parent=root)
        trace = self._trace(tmp_path, recorder)
        report = profile_trace(trace)
        by_name = {p.name: p for p in report.phases}
        # The forked span ran concurrently: the parent keeps its time.
        assert by_name["root"].self_time == pytest.approx(10.0)
        assert sorted(report.workers) == ["fork-0", "main"]

    def test_wall_prefers_meta_and_coverage_uses_it(self, tmp_path):
        recorder = FlightRecorder()
        recorder.tracer.add_raw("root", 0.0, 4.0)
        trace = self._trace(tmp_path, recorder, meta={"wall_seconds": 5.0})
        report = profile_trace(trace)
        assert report.wall_seconds == 5.0
        assert report.coverage == pytest.approx(0.8)

    def test_render_and_phase_metrics(self, tmp_path):
        recorder = FlightRecorder()
        with recorder.span("alpha"):
            recorder.count("things", 2)
        trace = self._trace(tmp_path, recorder)
        report = profile_trace(trace)
        rendered = render_profile(report, trace)
        assert "alpha" in rendered
        assert "coverage" in rendered
        assert "things" in rendered
        digest = phase_metrics(report)
        assert "alpha" in digest["phases"]
        assert digest["phases"]["alpha"]["calls"] == 1
        assert digest["span_count"] == 1


# ---------------------------------------------------------------------------
# Trace determinism across parallel tiers
# ---------------------------------------------------------------------------


def _traced_pipeline(parallelism, branch_parallelism="serial"):
    scenario = build_scenario()
    source = generate_source_instance(products=25, seed=3, benign_name_pairs=1)
    config = ChaseConfig(
        parallelism=parallelism,
        branch_parallelism=branch_parallelism,
        trace=TraceConfig(enabled=True),
    )
    outcome = run_scenario(scenario, source, config=config)
    assert outcome.ok
    assert outcome.trace is not None
    return outcome.trace


def _structure(payload):
    """(name, parent name) sequence, worker-agnostic, worker spans cut.

    ``*.worker`` spans are per-shard bookkeeping whose count depends on
    the tier; everything else must be bit-identical across tiers.
    """
    spans = payload["spans"]
    names = {span["id"]: span["name"] for span in spans}
    return [
        (span["name"], names.get(span["parent"]))
        for span in spans
        if not span["name"].endswith(".worker")
    ]


def _chase_counters(payload):
    return {
        name: value
        for name, value in payload["metrics"]["counters"].items()
        if name.startswith("chase.")
    }


class TestTraceDeterminism:
    def test_span_structure_identical_across_tiers(self):
        serial = _traced_pipeline("serial")
        threaded = _traced_pipeline("thread:2")
        forked = _traced_pipeline("process:2")
        assert _structure(serial) == _structure(threaded) == _structure(forked)

    def test_chase_counters_identical_across_tiers(self):
        serial = _traced_pipeline("serial")
        threaded = _traced_pipeline("thread:2")
        forked = _traced_pipeline("process:2")
        counters = _chase_counters(serial)
        assert counters  # the chase.* namespace is populated
        assert counters == _chase_counters(threaded) == _chase_counters(forked)

    def test_raced_sweep_structure_matches_serial_sweep(self):
        serial = _traced_pipeline("serial", branch_parallelism="serial")
        raced = _traced_pipeline("serial", branch_parallelism="thread:2")
        assert _structure(serial) == _structure(raced)
        assert _chase_counters(serial) == _chase_counters(raced)

    def test_forked_worker_spans_reach_the_parent_trace(self):
        payload = _traced_pipeline("process:2")
        workers = {span["worker"] for span in payload["spans"]}
        assert any(worker.startswith("fork-") for worker in workers)

    def test_threaded_worker_spans_reach_the_parent_trace(self):
        payload = _traced_pipeline("thread:2")
        workers = {span["worker"] for span in payload["spans"]}
        assert any(worker.startswith("thread-") for worker in workers)


# ---------------------------------------------------------------------------
# Overhead guard: a disabled trace never touches real instrumentation
# ---------------------------------------------------------------------------


class TestOverheadGuard:
    def test_untraced_run_never_builds_a_recorder(self, monkeypatch):
        def _forbidden(self, *args, **kwargs):
            raise AssertionError(
                "real instrumentation reached on the untraced path"
            )

        monkeypatch.setattr(FlightRecorder, "__init__", _forbidden)
        monkeypatch.setattr(Tracer, "span", _forbidden)
        monkeypatch.setattr(MetricsRegistry, "count", _forbidden)

        scenario = build_scenario()
        source = generate_source_instance(products=8, seed=1)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        assert outcome.trace is None
        assert outcome.chase.trace is None

    def test_untraced_chase_engine_uses_null_recorder(self, monkeypatch):
        monkeypatch.setattr(
            Tracer,
            "span",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("traced")),
        )
        scenario = build_scenario()
        source = generate_source_instance(products=8, seed=1)
        from repro.core.rewriter import rewrite
        from repro.core.compose import extend_source

        rewritten = rewrite(scenario)
        tgds = [d for d in rewritten.dependencies if not d.is_ded()]
        engine = StandardChase(tgds, rewritten.source_relations(), None)
        result = engine.run(extend_source(scenario, source))
        assert result.trace is None


# ---------------------------------------------------------------------------
# Batch integration
# ---------------------------------------------------------------------------


class TestTracedBatch:
    def test_traced_batch_records_carry_payloads(self):
        corpus = get_corpus("smoke").limited(3)
        report = run_batch(corpus, BatchOptions(trace=True))
        for record in report.records:
            assert record.trace is not None
            assert record.trace["version"] == 1
            names = {span["name"] for span in record.trace["spans"]}
            assert {"task", "build", "rewrite"} <= names
            assert record.metrics is not None
        summary = report.summary
        assert set(summary.phase_latencies) == {
            "build", "rewrite", "chase", "total"
        }
        for digest in summary.phase_latencies.values():
            assert digest["p99"] >= digest["p50"] >= 0.0

    def test_untraced_batch_records_have_no_payloads(self):
        corpus = get_corpus("smoke").limited(2)
        report = run_batch(corpus, BatchOptions())
        assert all(record.trace is None for record in report.records)
        assert all(record.metrics is None for record in report.records)

    def test_merged_batch_trace_covers_wall_clock(self, tmp_path):
        corpus = get_corpus("smoke").limited(3)
        report = run_batch(corpus, BatchOptions(trace=True))
        merged = FlightRecorder()
        for record in report.records:
            merged.merge_payload(record.trace)
        path = tmp_path / "batch.jsonl"
        write_trace(
            path, merged, meta={"wall_seconds": report.wall_seconds}
        )
        profile = profile_trace(read_trace(path))
        # The acceptance bar: merged per-phase self-times reconcile with
        # the batch wall clock (untraced gaps are record bookkeeping).
        assert profile.coverage is not None
        assert 0.5 <= profile.coverage <= 1.05

    def test_task_record_json_round_trips_trace(self, tmp_path):
        from repro.runtime.results import TaskRecord, read_jsonl, write_jsonl

        corpus = get_corpus("smoke").limited(1)
        report = run_batch(corpus, BatchOptions(trace=True))
        path = tmp_path / "records.jsonl"
        write_jsonl(report.records, path)
        loaded = read_jsonl(path)
        assert isinstance(loaded[0], TaskRecord)
        assert loaded[0].trace == report.records[0].trace


# ---------------------------------------------------------------------------
# Satellite: cache._miss rolls back disk hits
# ---------------------------------------------------------------------------


class TestCacheMissReclassification:
    def test_unusable_disk_payload_rolls_back_disk_hit(self, tmp_path):
        scenario = build_scenario()
        writer = RewriteCache(directory=tmp_path)
        # A payload with the wrong format version: get() serves it from
        # disk (hit + disk_hit), fetch() then reclassifies it as a miss.
        writer.put("deadbeef", {"version": 999})

        reader = RewriteCache(directory=tmp_path)
        result, fingerprint = reader.fetch(scenario, "deadbeef")
        assert result is None
        assert fingerprint == "deadbeef"
        assert reader.stats.hits == 0
        assert reader.stats.misses == 1
        assert reader.stats.disk_hits == 0

    def test_unusable_memory_payload_keeps_disk_hits(self, tmp_path):
        scenario = build_scenario()
        cache = RewriteCache(directory=tmp_path)
        cache.put("cafe", {"version": 999})
        # Served from memory: the rollback must not touch disk_hits.
        result, _ = cache.fetch(scenario, "cafe")
        assert result is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
        assert cache.stats.disk_hits == 0
