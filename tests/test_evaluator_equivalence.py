"""Differential test: compiled lazy evaluator vs. the materialized reference.

The query-evaluator overhaul must not change a single chase result.  We
run the full pipeline (rewrite once, chase + verify per evaluator) over
every scenario of the default ``mixed`` corpus — all families, all sweep
axes, 52 scenarios — once under the compiled pipeline and once under the
reference evaluator, and require equal outcomes: same chase status and a
fingerprint-identical target (falling back to homomorphic equivalence if
labeled-null names ever diverge).
"""

import pytest

from repro.core.rewriter import rewrite
from repro.logic.homomorphism import homomorphically_equivalent
from repro.pipeline import run_rewritten
from repro.relational.query import reference_evaluator
from repro.runtime.fingerprint import fingerprint_instance

from corpus import pipeline_specs

CORPUS = pipeline_specs()


@pytest.mark.parametrize("spec", CORPUS, ids=[s.label for s in CORPUS])
def test_chase_results_identical_across_evaluators(spec):
    built = spec.build()
    rewritten = rewrite(built.scenario)

    compiled = run_rewritten(built.scenario, rewritten, built.instance, verify=True)
    with reference_evaluator():
        reference = run_rewritten(
            built.scenario, rewritten, built.instance, verify=True
        )

    assert compiled.chase.status == reference.chase.status, spec.label
    if compiled.verification is not None or reference.verification is not None:
        assert compiled.verification.ok == reference.verification.ok, spec.label
    if not compiled.chase.ok:
        return
    fast, slow = compiled.target, reference.target
    if fingerprint_instance(fast) == fingerprint_instance(slow):
        return
    assert homomorphically_equivalent(list(fast), list(slow)), (
        f"{spec.label}: targets differ beyond null renaming"
    )
