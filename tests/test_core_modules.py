"""Tests for scenario validation, composition, verification and analysis."""

import pytest

from repro.core.analysis import analyze, predict_deds
from repro.core.compose import extend_source, materialize_source_views
from repro.core.rewriter import rewrite
from repro.core.scenario import MappingScenario
from repro.core.verify import semantic_target, verify_solution
from repro.datalog.program import ViewProgram
from repro.errors import SchemaError, UnsafeDependencyError
from repro.logic.atoms import Atom, Conjunction, Equality, NegatedConjunction
from repro.logic.dependencies import Disjunct, ded, egd, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema

x, y, z = Variable("x"), Variable("y"), Variable("z")


def schemas():
    source_schema = Schema("src")
    source_schema.add_relation("S", [("a", "int"), ("b", "int")])
    target_schema = Schema("tgt")
    target_schema.add_relation("T", [("a", "int"), ("b", "int")])
    return source_schema, target_schema


class TestScenarioValidation:
    def test_mapping_must_be_tgd(self):
        source_schema, target_schema = schemas()
        bad = egd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Equality(x, y),)
        )
        with pytest.raises(UnsafeDependencyError):
            MappingScenario(source_schema, target_schema, [bad])

    def test_premise_vocabulary_enforced(self):
        source_schema, target_schema = schemas()
        bad = tgd(
            Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("T", (x, y)),)
        )
        with pytest.raises(SchemaError):
            MappingScenario(source_schema, target_schema, [bad])

    def test_conclusion_vocabulary_enforced(self):
        source_schema, target_schema = schemas()
        bad = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("Nope", (x,)),)
        )
        with pytest.raises(SchemaError):
            MappingScenario(source_schema, target_schema, [bad])

    def test_tgd_constraint_accepted_ded_rejected(self):
        source_schema, target_schema = schemas()
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x, y)),)
        )
        # A tgd over the target vocabulary is a legal constraint
        # (foreign key / inclusion dependency, the paper's footnote 1).
        fk_constraint = tgd(
            Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("T", (y, x)),)
        )
        MappingScenario(
            source_schema,
            target_schema,
            [mapping],
            target_constraints=[fk_constraint],
        )
        # Deds, however, are an *output* language, not an input one.
        bad = ded(
            Conjunction(atoms=(Atom("T", (x, y)),)),
            (
                Disjunct(atoms=(Atom("T", (y, x)),)),
                Disjunct(equalities=(Equality(x, y),)),
            ),
        )
        with pytest.raises(UnsafeDependencyError):
            MappingScenario(
                source_schema,
                target_schema,
                [mapping],
                target_constraints=[bad],
            )

    def test_views_must_be_over_matching_schema(self):
        source_schema, target_schema = schemas()
        other = Schema("other")
        other.add_relation("T", [("a", "int"), ("b", "int")])
        program = ViewProgram(other)
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x, y)),)
        )
        with pytest.raises(SchemaError):
            MappingScenario(
                source_schema, target_schema, [mapping], target_views=program
            )

    def test_uses_source_views(self, running_scenario):
        assert not running_scenario.uses_source_views()


class TestCompose:
    def build(self):
        source_schema = Schema("src")
        source_schema.add_relation("S", [("a", "int"), ("b", "int")])
        target_schema = Schema("tgt")
        target_schema.add_relation("T", [("a", "int")])
        views = ViewProgram(source_schema)
        views.define(
            Atom("Big", (x,)),
            Conjunction(
                atoms=(Atom("S", (x, y)),),
                negations=(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom("S", (x, Constant(0))),))
                    ),
                ),
            ),
        )
        mapping = tgd(
            Conjunction(atoms=(Atom("Big", (x,)),)), (Atom("T", (x,)),)
        )
        scenario = MappingScenario(
            source_schema,
            target_schema,
            [mapping],
            source_views=views,
        )
        instance = Instance(source_schema)
        instance.add_row("S", 1, 5)
        instance.add_row("S", 2, 5)
        instance.add_row("S", 2, 0)
        return scenario, instance

    def test_materialize_source_views(self):
        scenario, instance = self.build()
        views_only = materialize_source_views(scenario, instance)
        assert views_only.facts("Big") == frozenset(
            {Atom("Big", (Constant(1),))}
        )
        assert views_only.size("S") == 0

    def test_extend_source_unions_base_and_views(self):
        scenario, instance = self.build()
        extended = extend_source(scenario, instance)
        assert extended.size("S") == 3
        assert extended.size("Big") == 1

    def test_extend_source_without_views_copies(self, running_scenario):
        instance = Instance()
        instance.add_row("S_Store", "a", "b")
        extended = extend_source(running_scenario, instance)
        assert extended.size("S_Store") == 1

    def test_end_to_end_with_source_views(self):
        from repro.pipeline import run_scenario

        scenario, instance = self.build()
        outcome = run_scenario(scenario, instance)
        assert outcome.ok
        assert outcome.target.facts("T") == frozenset(
            {Atom("T", (Constant(1),))}
        )

    def test_unfolded_premises_agree_with_materialization(self):
        from repro.pipeline import run_scenario

        scenario, instance = self.build()
        materialized = run_scenario(scenario, instance)
        unfolded = run_scenario(scenario, instance, unfold_source_premises=True)
        assert materialized.target == unfolded.target


class TestVerify:
    def test_good_solution_verifies(self, running_scenario, small_source):
        from repro.pipeline import run_scenario

        outcome = run_scenario(running_scenario, small_source, verify=True)
        assert outcome.verification is not None
        assert outcome.verification.ok

    def test_empty_target_fails_verification(
        self, running_scenario, small_source
    ):
        report = verify_solution(running_scenario, small_source, Instance())
        assert not report.ok
        assert any("m0" in str(v) or "m1" in str(v) for v in report.violations)

    def test_constraint_violation_detected(self, running_scenario):
        source = Instance()
        target = Instance()
        # Two same-name products with no thumbs-down: both Popular,
        # violating e0.
        target.add_row("T_Product", 1, "same", "s")
        target.add_row("T_Product", 2, "same", "s")
        report = verify_solution(running_scenario, source, target)
        assert not report.ok
        assert any(v.dependency == "e0" for v in report.violations)

    def test_semantic_target_materializes_views(
        self, running_scenario
    ):
        target = Instance()
        target.add_row("T_Product", 1, "p", "s")
        combined = semantic_target(running_scenario, target)
        assert combined.size("PopularProduct") == 1
        assert combined.size("T_Product") == 1

    def test_report_rendering(self, running_scenario, small_source):
        report = verify_solution(running_scenario, small_source, Instance())
        assert "FAILED" in str(report)


class TestAnalysis:
    def test_running_example_prediction(self, running_scenario):
        prediction = predict_deds(running_scenario)
        assert prediction.may_have_deds
        assert prediction.culprits == {"e0": ("PopularProduct",)}
        assert prediction.view_diagnostics["PopularProduct"].problematic
        assert not prediction.view_diagnostics["Product"].problematic

    def test_no_key_prediction(self, running_scenario_no_key):
        prediction = predict_deds(running_scenario_no_key)
        assert not prediction.may_have_deds

    def test_prediction_soundness_across_families(self):
        """Whenever the prediction says 'no deds', the rewriting is ded-free
        — and on all our scenario families it is exact."""
        from repro.scenarios import (
            build_scenario,
            cleanup_scenario,
            evolution_scenario,
            flagged_scenario,
            partition_scenario,
        )

        cases = [
            build_scenario(),
            build_scenario(include_key=False),
            cleanup_scenario(),
            evolution_scenario(),
            evolution_scenario(with_soft_delete=True),
            flagged_scenario(2),
            partition_scenario(3),
            partition_scenario(2, default_key=True),
            partition_scenario(4, class_keys=True),
        ]
        for scenario in cases:
            prediction, result = analyze(scenario)
            if not prediction.may_have_deds:
                assert not result.has_deds, scenario.name
            else:
                assert result.has_deds, scenario.name  # exact on these

    def test_union_view_in_conclusion_predicted(self):
        source_schema, target_schema = schemas()
        target_schema.add_relation("W", [("a", "int")])
        program = ViewProgram(target_schema)
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("T", (x, y)),)))
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("W", (x,)),)))
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("U", (x,)),), name="m"
        )
        scenario = MappingScenario(
            source_schema, target_schema, [mapping], target_views=program
        )
        prediction = predict_deds(scenario)
        assert prediction.may_have_deds
        assert "m" in prediction.culprits

    def test_cleanup_scenario_has_deds(self):
        """The clean-up key constraint sits on a negation view: ded."""
        from repro.scenarios import cleanup_scenario

        prediction, result = analyze(cleanup_scenario())
        assert prediction.may_have_deds and result.has_deds

    def test_partition_default_key_ded_width(self):
        from repro.scenarios import partition_scenario

        for width in (2, 3, 4):
            result = rewrite(partition_scenario(width, default_key=True))
            deds = result.deds()
            assert deds, width
            # equality + one branch per negated class on each side:
            # the default view has `width` NECs per PopularProduct-like
            # occurrence, twice (two premise copies), plus the equality.
            assert max(len(d.disjuncts) for d in deds) == 2 * width + 1
