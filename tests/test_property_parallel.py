"""Property-based determinism tests over the scenario generators.

Hypothesis drives :mod:`repro.scenarios.generators` with random seeds
and shape parameters, and asserts the engine's central invariant: one
generated scenario chases to the *same* result — fingerprint-identical
targets, same status, same number of scenarios tried — whichever
execution strategy runs it (serial, thread-sharded, process-sharded,
branch-raced).  A second property pins the DSL round-trip: a generated
scenario serializes and re-parses fingerprint-identically, whatever the
generator produced.

Profiles (registered in ``tests/conftest.py``): the default ``dev``
profile keeps examples low for the tier-1 suite, CI runs the fixed
``ci`` profile, and ``make fuzz`` runs the deeper ``deep`` profile.
Failing seeds found by fuzzing are **pinned in the repo** as
``@example(...)`` lines below, so every future run re-checks them
first; to reproduce a failure locally, run the test with the seed from
the failure report, e.g.::

    PYTHONPATH=src python -m pytest tests/test_property_parallel.py \
        -q -k modes_agree --hypothesis-seed=<seed>
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, example, given, settings

from repro.chase.engine import ChaseConfig
from repro.core.rewriter import rewrite
from repro.dsl.parser import parse_scenario
from repro.dsl.serializer import serialize_scenario
from repro.pipeline import run_rewritten
from repro.runtime.fingerprint import (
    canonical_scenario,
    fingerprint_instance,
    fingerprint_scenario,
)
from repro.scenarios.generators import random_scenario

# The execution strategies every scenario must agree across.  Thread
# modes exercise the sharded enumerate phase and the racer; the process
# tiers are covered by the (heavier) differential suites, so the
# property sweep stays fast enough to fuzz deeply.
MODE_CONFIGS = [
    ("thread-sharded", ChaseConfig(parallelism="thread:2")),
    ("branch-raced", ChaseConfig(branch_parallelism="thread:2")),
    (
        "sharded+raced",
        ChaseConfig(parallelism="thread:2", branch_parallelism="thread:2"),
    ),
]


def _chase_signature(outcome):
    """Everything that must match across execution strategies."""
    return (
        outcome.chase.status,
        fingerprint_instance(outcome.target),
        outcome.chase.scenarios_tried,
        outcome.chase.branch_selection,
        outcome.chase.stats.rounds,
        outcome.chase.stats.premise_matches,
        outcome.chase.stats.nulls_created,
        outcome.chase.failure_reason,
        outcome.verification.ok if outcome.verification is not None else None,
    )


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    negation=st.sampled_from([0.0, 0.4, 0.8]),
    union=st.sampled_from([0.0, 0.3, 0.6]),
    with_keys=st.booleans(),
)
# Pinned seeds: shapes that historically exercised tricky paths — a
# key egd over a unioned+negated view (ded race with failing equality
# branches) and a negation-heavy rewriting.  Keep them forever; they
# run first on every invocation.
@example(seed=7, negation=0.8, union=0.6, with_keys=True)
@example(seed=42, negation=0.4, union=0.3, with_keys=True)
@example(seed=1312, negation=0.8, union=0.0, with_keys=False)
def test_generated_scenarios_chase_identically_across_modes(
    seed, negation, union, with_keys
):
    generated = random_scenario(
        seed=seed,
        negation_probability=negation,
        union_probability=union,
        with_keys=with_keys,
        instance_rows=10,
    )
    rewritten = rewrite(generated.scenario)
    baseline = run_rewritten(
        generated.scenario, rewritten, generated.instance, verify=True
    )
    expected = _chase_signature(baseline)
    for label, config in MODE_CONFIGS:
        outcome = run_rewritten(
            generated.scenario,
            rewritten,
            generated.instance,
            verify=True,
            config=config,
        )
        assert _chase_signature(outcome) == expected, label


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    relations=st.integers(min_value=1, max_value=4),
    views=st.integers(min_value=1, max_value=5),
    negation=st.sampled_from([0.0, 0.5, 1.0]),
    union=st.sampled_from([0.0, 0.5, 1.0]),
)
# Pinned: maximal negation+union density, the shape most likely to
# stress serializer/parser corners.
@example(seed=9, relations=4, views=5, negation=1.0, union=1.0)
@example(seed=77, relations=1, views=1, negation=0.0, union=0.0)
def test_generated_scenarios_roundtrip_fingerprint_identically(
    seed, relations, views, negation, union
):
    generated = random_scenario(
        seed=seed,
        relations=relations,
        views=views,
        negation_probability=negation,
        union_probability=union,
        instance_rows=0,
    )
    document = parse_scenario(serialize_scenario(generated.scenario))
    assert fingerprint_scenario(document.scenario) == fingerprint_scenario(
        generated.scenario
    ), (
        "round-trip drifted; canonical diff:\n"
        f"{canonical_scenario(generated.scenario)}\nvs\n"
        f"{canonical_scenario(document.scenario)}"
    )


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
@example(seed=3)
def test_rerunning_one_mode_is_deterministic(seed):
    """The same config twice gives byte-identical targets — no hidden
    dependence on pool scheduling, thread interleaving or hash seeds."""
    generated = random_scenario(seed=seed, instance_rows=8)
    rewritten = rewrite(generated.scenario)
    config = ChaseConfig(
        parallelism="thread:2", branch_parallelism="thread:2"
    )
    first = run_rewritten(
        generated.scenario, rewritten, generated.instance,
        verify=False, config=config,
    )
    second = run_rewritten(
        generated.scenario, rewritten, generated.instance,
        verify=False, config=config,
    )
    assert first.chase.status == second.chase.status
    assert first.target == second.target
    assert fingerprint_instance(first.target) == fingerprint_instance(
        second.target
    )
