"""Unit tests for terms: constants, variables, labeled nulls, factories."""

import threading

import pytest

from repro.logic.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    VariableFactory,
    constants_in,
    is_ground,
    nulls_in,
    variables_in,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant("a") == Constant("a")

    def test_typed_inequality(self):
        assert Constant(1) != Constant("1")
        assert Constant(1.0) != Constant("1.0")

    def test_bool_vs_int_python_semantics(self):
        # Python's `1 == True` carries over; documents the behaviour.
        assert Constant(True).value == 1

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            Constant([1, 2])  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            Constant(None)  # type: ignore[arg-type]

    def test_str_quotes_strings_only(self):
        assert str(Constant("x")) == "'x'"
        assert str(Constant(3)) == "3"

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_ordering(self):
        assert Constant(1) < Constant(2)


class TestVariable:
    def test_identity(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str(self):
        assert str(Variable("pid")) == "pid"

    def test_sortable(self):
        assert sorted([Variable("b"), Variable("a")]) == [
            Variable("a"),
            Variable("b"),
        ]


class TestNull:
    def test_identity_by_id_only(self):
        assert Null(1, "x") == Null(1, "y")
        assert Null(1) != Null(2)

    def test_hash_ignores_hint(self):
        assert len({Null(1, "a"), Null(1, "b")}) == 1

    def test_not_equal_to_constant(self):
        assert Null(1) != Constant(1)

    def test_str_includes_hint(self):
        assert str(Null(3, "store")) == "#N3_store"
        assert str(Null(3)) == "#N3"

    def test_ordering_by_id(self):
        assert Null(1) < Null(2)


class TestVariableFactory:
    def test_fresh_avoids_existing(self):
        factory = VariableFactory(avoid=[Variable("v_0")])
        first = factory.fresh()
        assert first != Variable("v_0")

    def test_fresh_never_repeats(self):
        factory = VariableFactory()
        names = {factory.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_hint_used_as_prefix(self):
        factory = VariableFactory()
        fresh = factory.fresh(hint="store")
        assert fresh.name.startswith("store_")

    def test_avoid_after_construction(self):
        factory = VariableFactory(prefix="x")
        factory.avoid([Variable("x_0")])
        assert factory.fresh().name != "x_0"


class TestNullFactory:
    def test_monotone_ids(self):
        factory = NullFactory()
        ids = [factory.fresh().id for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_advance_past(self):
        factory = NullFactory()
        factory.advance_past([Null(100)])
        assert factory.fresh().id == 101

    def test_thread_safety(self):
        factory = NullFactory()
        seen = []

        def work():
            for _ in range(200):
                seen.append(factory.fresh().id)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == len(seen) == 800


class TestHelpers:
    def test_is_ground(self):
        assert is_ground([Constant(1), Null(2)])
        assert not is_ground([Constant(1), Variable("x")])

    def test_extractors(self):
        terms = [Constant(1), Variable("x"), Null(3), Constant("a")]
        assert list(constants_in(terms)) == [Constant(1), Constant("a")]
        assert list(variables_in(terms)) == [Variable("x")]
        assert list(nulls_in(terms)) == [Null(3)]
