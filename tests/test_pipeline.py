"""End-to-end pipeline tests across every scenario family."""


from repro.chase.result import ChaseStatus
from repro.pipeline import run_scenario, strip_auxiliary
from repro.relational.instance import Instance
from repro.scenarios import (
    build_scenario,
    cleanup_instance,
    cleanup_scenario,
    evolution_instance,
    evolution_scenario,
    flagged_instance,
    flagged_scenario,
    generate_source_instance,
    partition_instance,
    partition_scenario,
)


class TestRunningExamplePipeline:
    def test_clean_run_verifies(self):
        outcome = run_scenario(
            build_scenario(), generate_source_instance(products=20, seed=1)
        )
        assert outcome.ok
        assert outcome.verification is not None and outcome.verification.ok
        assert outcome.rewrite.has_deds

    def test_conflict_run_fails_chase(self):
        outcome = run_scenario(
            build_scenario(),
            generate_source_instance(products=5, seed=1, popular_name_conflicts=1),
        )
        assert not outcome.ok
        assert outcome.chase.status is ChaseStatus.FAILURE
        assert outcome.verification is None  # nothing to verify

    def test_target_has_no_aux_relations(self):
        outcome = run_scenario(
            build_scenario(), generate_source_instance(products=10, seed=2)
        )
        assert all(
            not relation.startswith("_grom_req_")
            for relation in outcome.target.relations()
        )

    def test_empty_source_succeeds_trivially(self):
        outcome = run_scenario(build_scenario(), Instance())
        assert outcome.ok
        assert len(outcome.target) == 0


class TestFamilies:
    def test_cleanup_family(self):
        outcome = run_scenario(cleanup_scenario(), cleanup_instance(orders=30))
        assert outcome.ok
        # Every non-cancelled order became a valid order (no tombstone);
        # cancelled ones got tombstones.
        cancelled = outcome.target.size("T_Cancelled")
        orders = outcome.target.size("T_Order")
        assert orders == 30
        assert 0 < cancelled < 30

    def test_evolution_family(self):
        outcome = run_scenario(evolution_scenario(), evolution_instance(20))
        assert outcome.ok
        assert outcome.target.size("Person") == 20
        assert outcome.target.size("Job") == 20
        assert not outcome.rewrite.has_deds  # conjunctive views

    def test_evolution_soft_delete_family(self):
        outcome = run_scenario(
            evolution_scenario(with_soft_delete=True), evolution_instance(10)
        )
        assert outcome.ok
        # ActiveEmployee's negation compiles to a denial on Departed.
        assert outcome.rewrite.denials()

    def test_partition_family(self):
        scenario = partition_scenario(3, class_keys=True)
        outcome = run_scenario(scenario, partition_instance(3, items=25, seed=4))
        assert outcome.ok
        assert outcome.target.size("T_Item") == 25

    def test_partition_default_key_with_duplicates_is_unsatisfiable(self):
        """Two same-name default-class items violate the default key, and
        every ded branch is blocked: the equality branch equates distinct
        ids, and tagging either item into an explicit class trips the
        default mapping's companion denial.  The greedy chase correctly
        walks all 2*width+1 = 5 derived scenarios and reports failure."""
        scenario = partition_scenario(2, default_key=True)
        source = partition_instance(2, items=10, seed=4, duplicate_names=1)
        outcome = run_scenario(scenario, source)
        assert not outcome.ok
        assert outcome.chase.status is ChaseStatus.FAILURE
        assert outcome.chase.scenarios_tried == 5

    def test_partition_default_key_without_duplicates_succeeds(self):
        scenario = partition_scenario(2, default_key=True)
        source = partition_instance(2, items=10, seed=4, duplicate_names=0)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        assert outcome.chase.scenarios_tried == 1  # ded never fires

    def test_flagged_family_satisfiable(self):
        scenario = flagged_scenario(2)
        outcome = run_scenario(scenario, flagged_instance(products=8, name_pairs=1))
        assert outcome.ok
        assert outcome.verification is not None and outcome.verification.ok
        assert outcome.chase.scenarios_tried >= 1


class TestStripAuxiliary:
    def test_strip(self):
        instance = Instance()
        instance.add_row("T", 1)
        instance.add_row("_grom_req_e0_0", 1)
        stripped = strip_auxiliary(instance)
        assert stripped.relations() == ["T"]
