"""The bench-trend comparator (benchmarks/trend.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_TREND_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "trend.py"
)
_spec = importlib.util.spec_from_file_location("grom_bench_trend", _TREND_PATH)
trend = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("grom_bench_trend", trend)
_spec.loader.exec_module(trend)


def write_bench(directory, name, payload):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


class TestFlatten:
    def test_numeric_leaves_with_paths(self):
        flat = dict(trend.flatten({"a": {"b": 1.5, "c": 2}, "d": 3}))
        assert flat == {"a.b": 1.5, "a.c": 2.0, "d": 3.0}

    def test_booleans_and_strings_ignored(self):
        flat = dict(trend.flatten({"quick": True, "label": "x", "v": 1}))
        assert flat == {"v": 1.0}


class TestDirection:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("by_size.2000.scratch_seconds", -1),
            ("per_probe_seconds.1000", -1),
            ("by_size.2000.speedup", 1),
            ("tasks_per_second", 1),
            ("facts", 0),
        ],
    )
    def test_polarity(self, path, expected):
        assert trend.direction(path) == expected


class TestCompare:
    def test_time_increase_past_threshold_is_a_regression(self):
        previous = {"e9": {"per_probe_seconds.1000": 1.0}}
        current = {"e9": {"per_probe_seconds.1000": 1.5}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert len(regressions) == 1
        assert "REGRESSION" in regressions[0]

    def test_speedup_drop_past_threshold_is_a_regression(self):
        previous = {"e10": {"by_size.2000.speedup": 5.0}}
        current = {"e10": {"by_size.2000.speedup": 3.0}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert len(regressions) == 1

    def test_improvements_and_small_changes_pass(self):
        previous = {"e9": {"per_probe_seconds.1000": 1.0, "speedup": 2.0}}
        current = {"e9": {"per_probe_seconds.1000": 0.5, "speedup": 2.2}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert regressions == []

    def test_unpolarized_metrics_move_without_flagging(self):
        previous = {"e2": {"facts": 100.0}}
        current = {"e2": {"facts": 300.0}}
        regressions, movements = trend.compare(current, previous, 0.2)
        assert regressions == []
        assert len(movements) == 1

    def test_new_benchmark_is_informational(self):
        regressions, movements = trend.compare({"e10": {"v": 1.0}}, {}, 0.2)
        assert regressions == []
        assert "new benchmark" in movements[0]


class TestMain:
    def test_end_to_end_exit_codes(self, tmp_path):
        current = tmp_path / "current"
        previous = tmp_path / "previous"
        current.mkdir()
        previous.mkdir()
        write_bench(previous, "e9_probe_cost", {"per_probe_seconds": {"1000": 1.0}})
        write_bench(current, "e9_probe_cost", {"per_probe_seconds": {"1000": 1.1}})
        assert trend.main([str(current), str(previous)]) == 0
        write_bench(current, "e9_probe_cost", {"per_probe_seconds": {"1000": 2.0}})
        assert trend.main([str(current), str(previous)]) == 1
        # A 2x slowdown is fine under a generous threshold.
        assert trend.main([str(current), str(previous), "--threshold", "1.5"]) == 0

    def test_missing_previous_is_not_an_error(self, tmp_path):
        current = tmp_path / "current"
        current.mkdir()
        (tmp_path / "previous").mkdir()
        write_bench(current, "e2", {"v": 1.0})
        assert trend.main([str(current), str(tmp_path / "previous")]) == 0
