"""The bench-trend comparator (benchmarks/trend.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_TREND_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "trend.py"
)
_spec = importlib.util.spec_from_file_location("grom_bench_trend", _TREND_PATH)
trend = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("grom_bench_trend", trend)
_spec.loader.exec_module(trend)


def write_bench(directory, name, payload):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


class TestFlatten:
    def test_numeric_leaves_with_paths(self):
        flat = dict(trend.flatten({"a": {"b": 1.5, "c": 2}, "d": 3}))
        assert flat == {"a.b": 1.5, "a.c": 2.0, "d": 3.0}

    def test_booleans_and_strings_ignored(self):
        flat = dict(trend.flatten({"quick": True, "label": "x", "v": 1}))
        assert flat == {"v": 1.0}


class TestDirection:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("by_size.2000.scratch_seconds", -1),
            ("per_probe_seconds.1000", -1),
            ("by_size.2000.speedup", 1),
            ("tasks_per_second", 1),
            ("facts", 0),
            # Flight-recorder phase digests (BENCH_trace_phases.json).
            ("phases.chase.enumerate.p50_seconds", -1),
            ("phases.verify.p99_seconds", -1),
            ("phases.task.self_seconds", -1),
            ("coverage", 1),
            # E14 probe-throughput leaves: rows/sec is higher-is-better,
            # and a drop in the block-vs-row ratio is a regression.
            ("delta_contiguous.block_rows_per_second", 1),
            ("by_fanout.16.row_rows_per_second", 1),
            ("delta_sparse.block_vs_row_speedup", 1),
        ],
    )
    def test_polarity(self, path, expected):
        assert trend.direction(path) == expected


class TestCompare:
    def test_time_increase_past_threshold_is_a_regression(self):
        previous = {"e9": {"per_probe_seconds.1000": 1.0}}
        current = {"e9": {"per_probe_seconds.1000": 1.5}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert len(regressions) == 1
        assert "REGRESSION" in regressions[0]

    def test_speedup_drop_past_threshold_is_a_regression(self):
        previous = {"e10": {"by_size.2000.speedup": 5.0}}
        current = {"e10": {"by_size.2000.speedup": 3.0}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert len(regressions) == 1

    def test_improvements_and_small_changes_pass(self):
        previous = {"e9": {"per_probe_seconds.1000": 1.0, "speedup": 2.0}}
        current = {"e9": {"per_probe_seconds.1000": 0.5, "speedup": 2.2}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert regressions == []

    def test_unpolarized_metrics_move_without_flagging(self):
        previous = {"e2": {"facts": 100.0}}
        current = {"e2": {"facts": 300.0}}
        regressions, movements = trend.compare(current, previous, 0.2)
        assert regressions == []
        assert len(movements) == 1

    def test_new_benchmark_is_informational(self):
        regressions, movements = trend.compare({"e10": {"v": 1.0}}, {}, 0.2)
        assert regressions == []
        assert "new benchmark" in movements[0]

    def test_phase_latency_regression_is_flagged(self):
        previous = {"trace_phases": {"phases.chase.p99_seconds": 0.10}}
        current = {"trace_phases": {"phases.chase.p99_seconds": 0.15}}
        regressions, _ = trend.compare(current, previous, 0.2)
        assert len(regressions) == 1


class TestStepSummary:
    def test_regressions_appended_to_summary_file(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        trend.write_step_summary(
            ["REGRESSION e9.per_probe_seconds.1000: 1 -> 1.5 (+50.0%)"], 0.2
        )
        text = summary.read_text()
        assert "20%" in text
        assert "per_probe_seconds" in text

    def test_no_op_outside_actions(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        trend.write_step_summary(["REGRESSION x: 1 -> 2 (+100.0%)"], 0.2)


class TestRollingWindow:
    def _history(self, tmp_path, values):
        history = tmp_path / "history"
        history.mkdir()
        for run_number, value in enumerate(values):
            run_dir = history / f"run-{run_number:09d}"
            run_dir.mkdir()
            write_bench(
                run_dir, "e9_probe_cost", {"per_probe_seconds": {"1000": value}}
            )
        return history

    def test_load_history_flat_directory_is_one_run(self, tmp_path):
        flat = tmp_path / "previous"
        flat.mkdir()
        write_bench(flat, "e9", {"v": 1.0})
        runs = trend.load_history(str(flat), window=5)
        assert len(runs) == 1
        assert runs[0] == {"e9": {"v": 1.0}}

    def test_load_history_takes_last_window_runs(self, tmp_path):
        history = self._history(tmp_path, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        runs = trend.load_history(str(history), window=3)
        values = [
            run["e9_probe_cost"]["per_probe_seconds.1000"] for run in runs
        ]
        assert values == [4.0, 5.0, 6.0]

    def test_median_baseline_resists_one_noisy_run(self, tmp_path):
        # One 10x outlier among five runs must not move the baseline.
        history = self._history(tmp_path, [1.0, 1.1, 10.0, 0.9, 1.0])
        runs = trend.load_history(str(history), window=5)
        baseline = trend.median_baseline(runs)
        assert baseline["e9_probe_cost"]["per_probe_seconds.1000"] == 1.0

    def test_median_covers_metrics_missing_from_some_runs(self, tmp_path):
        history = tmp_path / "history"
        history.mkdir()
        for run_number, payload in enumerate(
            [{"v": 1.0}, {"v": 3.0, "fresh": 7.0}]
        ):
            run_dir = history / f"run-{run_number:09d}"
            run_dir.mkdir()
            write_bench(run_dir, "e2", payload)
        baseline = trend.median_baseline(
            trend.load_history(str(history), window=5)
        )
        assert baseline["e2"] == {"v": 2.0, "fresh": 7.0}

    def test_main_compares_against_window_median(self, tmp_path):
        history = self._history(tmp_path, [1.0, 1.0, 50.0, 1.0, 1.0])
        current = tmp_path / "current"
        current.mkdir()
        # 1.1 is fine against the median (1.0) even though the previous
        # run alone (1.0) and the outlier (50.0) would disagree wildly.
        write_bench(
            current, "e9_probe_cost", {"per_probe_seconds": {"1000": 1.1}}
        )
        assert trend.main([str(current), str(history)]) == 0
        write_bench(
            current, "e9_probe_cost", {"per_probe_seconds": {"1000": 2.0}}
        )
        assert trend.main([str(current), str(history)]) == 1
        # A window of one = compare against the last run only.
        assert (
            trend.main([str(current), str(history), "--window", "1"]) == 1
        )

    def test_main_empty_history_directory(self, tmp_path):
        history = tmp_path / "history"
        history.mkdir()
        current = tmp_path / "current"
        current.mkdir()
        write_bench(current, "e2", {"v": 1.0})
        assert trend.main([str(current), str(history)]) == 0


class TestMain:
    def test_end_to_end_exit_codes(self, tmp_path):
        current = tmp_path / "current"
        previous = tmp_path / "previous"
        current.mkdir()
        previous.mkdir()
        write_bench(previous, "e9_probe_cost", {"per_probe_seconds": {"1000": 1.0}})
        write_bench(current, "e9_probe_cost", {"per_probe_seconds": {"1000": 1.1}})
        assert trend.main([str(current), str(previous)]) == 0
        write_bench(current, "e9_probe_cost", {"per_probe_seconds": {"1000": 2.0}})
        assert trend.main([str(current), str(previous)]) == 1
        # A 2x slowdown is fine under a generous threshold.
        assert trend.main([str(current), str(previous), "--threshold", "1.5"]) == 0

    def test_missing_previous_is_not_an_error(self, tmp_path):
        current = tmp_path / "current"
        current.mkdir()
        (tmp_path / "previous").mkdir()
        write_bench(current, "e2", {"v": 1.0})
        assert trend.main([str(current), str(tmp_path / "previous")]) == 0
