"""Tests for rendering (pretty), the error hierarchy, and misc surfaces."""


from repro.errors import (
    ArityError,
    ChaseFailure,
    GromError,
    LogicError,
    ParseError,
    SchemaError,
    TypingError,
    UnknownRelationError,
)
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality, NegatedConjunction
from repro.logic.dependencies import Disjunct, ded, denial, egd, tgd
from repro.logic.pretty import (
    render_conjunction,
    render_dependencies,
    render_dependency,
)
from repro.logic.terms import Variable

x, y = Variable("x"), Variable("y")


class TestPretty:
    def test_render_conjunction_nested_negation(self):
        inner = Conjunction(
            atoms=(Atom("B", (x,)),),
            negations=(NegatedConjunction(Conjunction(atoms=(Atom("C", (x,)),))),),
        )
        body = Conjunction(
            atoms=(Atom("A", (x,)),),
            negations=(NegatedConjunction(inner),),
        )
        unicode_form = render_conjunction(body)
        assert "¬(B(x), ¬(C(x)))" in unicode_form
        ascii_form = render_conjunction(body, unicode=False)
        assert "not (B(x), not (C(x)))" in ascii_form

    def test_render_dependency_denial(self):
        dependency = denial(Conjunction(atoms=(Atom("A", (x,)),)), name="d")
        assert render_dependency(dependency) == "d: A(x) → ⊥"
        assert render_dependency(dependency, unicode=False) == "d: A(x) -> false"

    def test_render_dependency_ded(self):
        dependency = ded(
            Conjunction(atoms=(Atom("A", (x, y)),)),
            (
                Disjunct(equalities=(Equality(x, y),)),
                Disjunct(atoms=(Atom("B", (x,)),)),
            ),
            name="d0",
        )
        rendered = render_dependency(dependency, unicode=False)
        assert "(x = y) | B(x)" in rendered

    def test_render_dependencies_groups_by_kind(self):
        group = [
            tgd(Conjunction(atoms=(Atom("A", (x,)),)), (Atom("B", (x,)),), "t"),
            egd(
                Conjunction(atoms=(Atom("A", (x,)), Atom("A", (y,)))),
                (Equality(x, y),),
                "e",
            ),
            denial(Conjunction(atoms=(Atom("B", (x,)),)), "dn"),
        ]
        rendered = render_dependencies(group)
        assert rendered.index("tgds (1)") < rendered.index("egds (1)")
        assert rendered.index("egds (1)") < rendered.index("denials (1)")

    def test_render_comparison_in_disjunct(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("A", (x, y)),)),
            (Atom("B", (x,)),),
            name="t",
            comparisons=(Comparison("<", x, y),),
        )
        assert "x < y" in render_dependency(dependency)


class TestErrorHierarchy:
    def test_all_errors_are_grom_errors(self):
        for exc in (
            LogicError("x"),
            SchemaError("x"),
            TypingError("x"),
            ParseError("x"),
            ChaseFailure("x"),
            ArityError("R", 2, 3),
            UnknownRelationError("R"),
        ):
            assert isinstance(exc, GromError)

    def test_arity_error_payload(self):
        error = ArityError("R", 2, 3)
        assert error.relation == "R"
        assert error.expected == 2 and error.got == 3
        assert "R" in str(error)

    def test_parse_error_location(self):
        error = ParseError("boom", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_chase_failure_culprit(self):
        dep = denial(Conjunction(atoms=(Atom("A", (x,)),)), "d")
        failure = ChaseFailure("denied", culprit=dep)
        assert failure.culprit is dep


class TestResultSurfaces:
    def test_chase_result_str(self):
        from repro.chase.result import ChaseResult, ChaseStats, ChaseStatus
        from repro.relational.instance import Instance

        ok = ChaseResult(ChaseStatus.SUCCESS, Instance(), stats=ChaseStats(rounds=2))
        assert "success" in str(ok)
        bad = ChaseResult(
            ChaseStatus.FAILURE, Instance(), failure_reason="because"
        )
        assert "because" in str(bad)

    def test_chase_stats_merge(self):
        from repro.chase.result import ChaseStats

        merged = ChaseStats(rounds=1, tgd_fires=2).merge(
            ChaseStats(rounds=3, tgd_fires=4, nulls_created=5)
        )
        assert merged.rounds == 4
        assert merged.tgd_fires == 6
        assert merged.nulls_created == 5

    def test_rewrite_result_repr(self, rewritten):
        rendered = repr(rewritten)
        assert "ded=1" in rendered

    def test_scenario_repr(self, running_scenario):
        assert "running-example" in repr(running_scenario)

    def test_verification_report_ok_str(self, running_scenario, small_source):
        from repro.pipeline import run_scenario

        outcome = run_scenario(running_scenario, small_source)
        assert "OK" in str(outcome.verification)
