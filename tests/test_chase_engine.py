"""Tests for the standard chase: tgds, egds, denials, mixed, policies."""

import pytest

from repro.chase.engine import ChaseConfig, StandardChase, chase
from repro.chase.result import ChaseStatus
from repro.errors import ChaseError
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import Dependency, Disjunct, ded, denial, egd, tgd
from repro.logic.terms import Constant, Null, Variable
from repro.relational.instance import Instance

x, y, z = Variable("x"), Variable("y"), Variable("z")


def c(v):
    return Constant(v)


def instance_with(*facts):
    instance = Instance()
    for relation, *values in facts:
        instance.add_row(relation, *values)
    return instance


class TestTgdChase:
    def test_simple_copy(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x, y)),)
        )
        result = chase([dependency], instance_with(("S", 1, 2)), ["S"])
        assert result.ok
        assert result.target.facts("T") == frozenset({Atom("T", (c(1), c(2)))})

    def test_existential_invents_null(self):
        dependency = tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),))
        result = chase([dependency], instance_with(("S", 1)), ["S"])
        fact = next(iter(result.target.facts("T")))
        assert fact.terms[0] == c(1)
        assert isinstance(fact.terms[1], Null)
        assert result.stats.nulls_created == 1

    def test_restricted_does_not_refire_satisfied(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        source = instance_with(("S", 1))
        source.add_row("T", 1, 99)
        result = chase([dependency], source, ["S"])
        assert result.ok
        # T(1, 99) already witnesses the conclusion: nothing new.
        assert result.target.size("T") == 1
        assert result.stats.tgd_fires == 0

    def test_oblivious_fires_regardless(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        source = instance_with(("S", 1))
        source.add_row("T", 1, 99)
        result = chase(
            [dependency], source, ["S"], config=ChaseConfig(policy="oblivious")
        )
        assert result.target.size("T") == 2
        # ... but only once per trigger.
        assert result.stats.tgd_fires == 1

    def test_cascading_tgds(self):
        first = tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("A", (x,)),))
        second = tgd(Conjunction(atoms=(Atom("A", (x,)),)), (Atom("B", (x,)),))
        result = chase([second, first], instance_with(("S", 1)), ["S"])
        assert result.target.size("B") == 1
        assert result.stats.rounds >= 2

    def test_join_premise(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x, y)), Atom("S", (y, z)))),
            (Atom("T", (x, z)),),
        )
        result = chase(
            [dependency], instance_with(("S", 1, 2), ("S", 2, 3)), ["S"]
        )
        assert result.target.facts("T") == frozenset({Atom("T", (c(1), c(3)))})

    def test_multi_atom_conclusion_shares_nulls(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)),
            (Atom("T", (x, z)), Atom("U", (z,))),
        )
        result = chase([dependency], instance_with(("S", 1)), ["S"])
        t_fact = next(iter(result.target.facts("T")))
        u_fact = next(iter(result.target.facts("U")))
        assert t_fact.terms[1] == u_fact.terms[0]

    def test_source_relations_excluded_from_target(self):
        dependency = tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),))
        result = chase([dependency], instance_with(("S", 1)), ["S"])
        assert result.target.size("S") == 0


class TestEgdChase:
    def test_null_unified_with_constant(self):
        make = tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),))
        key = egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("T", (x, z)))),
            (Equality(y, z),),
        )
        copy = tgd(
            Conjunction(atoms=(Atom("S2", (x, y)),)), (Atom("T", (x, y)),)
        )
        source = instance_with(("S", 1), ("S2", 1, 42))
        result = chase([make, copy, key], source, ["S", "S2"])
        assert result.ok
        assert result.target.facts("T") == frozenset({Atom("T", (c(1), c(42)))})
        assert result.stats.egd_unifications >= 1

    def test_null_null_unification(self):
        make1 = tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),))
        make2 = tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("U", (x, z)),))
        key = egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("U", (x, z)))),
            (Equality(y, z),),
        )
        result = chase([make1, make2, key], instance_with(("S", 1)), ["S"])
        assert result.ok
        t_value = next(iter(result.target.facts("T"))).terms[1]
        u_value = next(iter(result.target.facts("U"))).terms[1]
        assert t_value == u_value

    def test_constant_clash_fails(self):
        key = egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("T", (x, z)))),
            (Equality(y, z),),
        )
        source = Instance()
        source.add_row("T", 1, 10)
        source.add_row("T", 1, 20)
        result = chase([key], source, [])
        assert result.status is ChaseStatus.FAILURE
        assert "cannot equate" in result.failure_reason

    def test_egd_then_tgd_interaction(self):
        """Unification can make a tgd premise match where it did not."""
        make = tgd(
            Conjunction(atoms=(Atom("T", (x, c(5))),)), (Atom("Out", (x,)),)
        )
        key = egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("Five", (x, z)))),
            (Equality(y, z),),
        )
        source = Instance()
        source.add(Atom("T", (c(1), Null(7))))
        source.add_row("Five", 1, 5)
        result = chase([make, key], source, ["Five"])
        assert result.ok
        assert result.target.size("Out") == 1


class TestDenials:
    def test_denial_fires(self):
        dependency = denial(Conjunction(atoms=(Atom("T", (x, x)),)), name="no_loop")
        source = Instance()
        source.add_row("T", 1, 1)
        result = chase([dependency], source, [])
        assert result.status is ChaseStatus.FAILURE
        assert "no_loop" in result.failure_reason

    def test_denial_quiet_when_unmatched(self):
        dependency = denial(Conjunction(atoms=(Atom("T", (x, x)),)))
        source = Instance()
        source.add_row("T", 1, 2)
        assert chase([dependency], source, []).ok


class TestDisjunctComparisons:
    def test_failing_required_comparison_fails_chase(self):
        dependency = Dependency(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Disjunct(
                atoms=(Atom("T", (x,)),),
                comparisons=(Comparison("<", x, y),),
            ),),
            "cmp",
        )
        result = chase([dependency], instance_with(("S", 5, 1)), ["S"])
        assert result.status is ChaseStatus.FAILURE

    def test_satisfied_comparison_passes(self):
        dependency = Dependency(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Disjunct(
                atoms=(Atom("T", (x,)),),
                comparisons=(Comparison("<", x, y),),
            ),),
            "cmp",
        )
        result = chase([dependency], instance_with(("S", 1, 5)), ["S"])
        assert result.ok
        assert result.target.size("T") == 1


class TestMixedDependencies:
    def test_equality_and_atoms_together(self):
        dependency = Dependency(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Disjunct(atoms=(Atom("T", (x,)),), equalities=(Equality(x, y),)),),
            "mixed",
        )
        source = Instance()
        source.add(Atom("S", (c(1), Null(9))))
        result = chase([dependency], source, [])
        assert result.ok
        # Null(9) was unified with 1 and T(1) created.
        assert Atom("T", (c(1),)) in result.target


class TestGuards:
    def test_ded_without_choice_rejected(self):
        dependency = ded(
            Conjunction(atoms=(Atom("S", (x,)),)),
            (Disjunct(atoms=(Atom("T", (x,)),)), Disjunct(atoms=(Atom("U", (x,)),))),
        )
        with pytest.raises(ChaseError):
            StandardChase([dependency])

    def test_ded_with_choice_accepted(self):
        dependency = ded(
            Conjunction(atoms=(Atom("S", (x,)),)),
            (Disjunct(atoms=(Atom("T", (x,)),)), Disjunct(atoms=(Atom("U", (x,)),))),
        )
        engine = StandardChase([dependency], ["S"], branch_choice={0: 1})
        result = engine.run(instance_with(("S", 1)))
        assert result.ok
        assert result.target.size("U") == 1
        assert result.target.size("T") == 0

    def test_ded_choice_respects_satisfaction_of_other_branch(self):
        dependency = ded(
            Conjunction(atoms=(Atom("S", (x,)),)),
            (Disjunct(atoms=(Atom("T", (x,)),)), Disjunct(atoms=(Atom("U", (x,)),))),
        )
        source = instance_with(("S", 1))
        source.add_row("T", 1)  # first branch already satisfied
        engine = StandardChase([dependency], ["S"], branch_choice={0: 1})
        result = engine.run(source)
        assert result.target.size("U") == 0

    def test_target_negation_in_premise_rejected(self):
        dependency = tgd(
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("T", (x,)),))),
                ),
            ),
            (Atom("U", (x,)),),
        )
        with pytest.raises(ChaseError):
            StandardChase([dependency], source_relations=["S"])

    def test_source_negation_in_premise_allowed(self):
        dependency = tgd(
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom("S0", (x,)),))
                    ),
                ),
            ),
            (Atom("U", (x,)),),
        )
        engine = StandardChase([dependency], source_relations=["S", "S0"])
        source = instance_with(("S", 1), ("S", 2), ("S0", 2))
        result = engine.run(source)
        assert result.target.facts("U") == frozenset({Atom("U", (c(1),))})


class TestTermination:
    def test_round_budget(self):
        # x -> fresh null, repeatedly (not weakly acyclic).
        grow = tgd(Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("T", (y, z)),))
        source = Instance()
        source.add_row("T", 1, 2)
        result = chase([grow], source, [], config=ChaseConfig(max_rounds=5))
        assert result.status is ChaseStatus.NONTERMINATION

    def test_fact_budget(self):
        grow = tgd(Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("T", (y, z)),))
        source = Instance()
        source.add_row("T", 1, 2)
        result = chase(
            [grow], source, [], config=ChaseConfig(max_facts=10, max_rounds=10_000)
        )
        assert result.status is ChaseStatus.NONTERMINATION


class TestPreexistingTarget:
    def test_target_instance_merged(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        target = Instance()
        target.add_row("T", 1, 42)
        result = StandardChase([dependency], ["S"]).run(
            instance_with(("S", 1)), target_instance=target
        )
        assert result.ok
        assert result.target.size("T") == 1  # satisfied by preexisting fact


class TestTriggerMemory:
    """Oblivious-policy trigger dedup must not grow without bound."""

    def make_memory(self, limit):
        from repro.chase.engine import _TriggerMemory

        return _TriggerMemory(limit)

    def test_exact_below_limit(self):
        memory = self.make_memory(100)
        triggers = [(0, (c(i),)) for i in range(50)]
        for trigger in triggers:
            assert trigger not in memory
            memory.add(trigger)
        assert all(trigger in memory for trigger in triggers)
        assert memory.exact_size == 50
        assert memory.spilled == 0

    def test_memory_growth_is_bounded_past_the_limit(self):
        """Regression: 50k triggers through a limit of 1k must cap the
        exact tier and park the rest in the fixed-size Bloom filter."""
        memory = self.make_memory(1_000)
        for i in range(50_000):
            memory.add((0, (c(i),)))
        assert memory.exact_size <= 1_000
        assert memory.spilled == 49_000
        # Exact tuples plus the (fixed) Bloom bits: bounded regardless
        # of how many more triggers arrive.
        ceiling = memory.approximate_bytes
        for i in range(50_000, 60_000):
            memory.add((0, (c(i),)))
        assert memory.approximate_bytes == ceiling

    def test_no_false_negatives_after_spilling(self):
        memory = self.make_memory(10)
        triggers = [(1, (c(i), c(i + 1))) for i in range(5_000)]
        for trigger in triggers:
            memory.add(trigger)
        # Every fired trigger is still found: a trigger never fires twice.
        assert all(trigger in memory for trigger in triggers)

    def test_oblivious_chase_uses_bounded_memory(self):
        """A long oblivious run keeps its exact tier at the config cap."""
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        source = Instance()
        for i in range(200):
            source.add_row("S", i)
        engine = StandardChase(
            [dependency],
            ["S"],
            config=ChaseConfig(policy="oblivious", oblivious_trigger_limit=50),
        )
        result = engine.run(source)
        assert result.ok
        assert result.target.size("T") == 200  # every trigger fired once
        assert engine._trigger_memory.exact_size <= 50
        assert engine._trigger_memory.spilled >= 150

    def test_restricted_policy_unaffected_by_tiny_limit(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, z)),)
        )
        source = instance_with(*[("S", i) for i in range(40)])
        result = chase(
            [dependency], source, ["S"],
            config=ChaseConfig(oblivious_trigger_limit=0),
        )
        assert result.ok and result.target.size("T") == 40
