"""Shared scenario-corpus registry for the differential test suites.

The evaluator-equivalence, materialization, parallel-chase and
branch-race suites all sweep "every scenario we have" through two
engine configurations and compare.  This module is their single source
of scenarios, in two tiers:

* **Pipeline specs** — :class:`repro.runtime.corpus.ScenarioSpec`s from
  the batch runtime's registered corpora, annotated with feature flags
  derived from their family and parameters.  ``pipeline_specs()``
  returns the default ``mixed`` corpus; ``require``/``exclude`` filter
  by flag (e.g. only the scenarios whose rewriting produces deds).
* **Chase cases** — raw ``(dependencies, source_relations, config,
  instance)`` setups that exercise engine paths the pipeline families
  do not reach deterministically: hard failures (denials, egd constant
  clashes), recursion across delta rounds, Bloom-spilled trigger
  memory, and disjunctive sweeps with failure pressure.

Flags (used by ``require``/``exclude`` in both tiers):

``disjunctive``
    The scenario rewrites to (or directly contains) deds — the greedy
    branch search runs, so branch racing has something to race.
``failing``
    The chase ends in FAILURE (a denial fires or an egd equates
    distinct constants); differential suites must compare failure
    reasons, not just targets.
``recursive``
    Facts enforced in one round feed premises in later delta rounds.
``bloom-spill``
    The oblivious-policy trigger memory exceeds its exact limit and
    spills into the Bloom filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from repro.chase.engine import ChaseConfig
from repro.logic.atoms import Atom, Conjunction, Equality
from repro.logic.dependencies import Dependency, ded, denial, egd, tgd, Disjunct
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.runtime.corpus import DEFAULT_CORPUS, ScenarioSpec, get_corpus

DISJUNCTIVE = "disjunctive"
FAILING = "failing"
RECURSIVE = "recursive"
BLOOM_SPILL = "bloom-spill"

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def dense_pair_instance(rows: int = 60) -> Instance:
    """Enough facts to clear the sharders' MIN_SHARD_FACTS threshold."""
    instance = Instance()
    for i in range(rows):
        instance.add(Atom("S", (Constant(i), Constant(i % 7))))
        instance.add(Atom("R", (Constant(i % 7), Constant(i % 5))))
    return instance


# ---------------------------------------------------------------------------
# Pipeline tier: batch-runtime specs + feature flags
# ---------------------------------------------------------------------------


def spec_flags(spec: ScenarioSpec) -> FrozenSet[str]:
    """Feature flags of a batch-runtime spec, derived from its family.

    The ``flagged`` family's name keys always rewrite to deds; the
    ``partition`` family does when the default-class key is requested
    (its key egd sits on the negation-defined default view; per-class
    keys land on plain conjunctive views and stay standard).
    """
    flags = set()
    params = spec.params_dict()
    if spec.family == "flagged":
        flags.add(DISJUNCTIVE)
    if spec.family == "partition" and params.get("default_key"):
        flags.add(DISJUNCTIVE)
    return frozenset(flags)


def pipeline_specs(
    require: Iterable[str] = (),
    exclude: Iterable[str] = (),
    corpus: str = DEFAULT_CORPUS,
) -> List[ScenarioSpec]:
    """The named corpus's specs, filtered by feature flags."""
    wanted = frozenset(require)
    unwanted = frozenset(exclude)
    out = []
    for spec in get_corpus(corpus):
        flags = spec_flags(spec)
        if wanted <= flags and not (unwanted & flags):
            out.append(spec)
    return out


# ---------------------------------------------------------------------------
# Chase tier: raw dependency/instance setups
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaseSetup:
    """One buildable chase scenario: everything an engine run needs."""

    dependencies: Tuple[Dependency, ...]
    source_relations: Tuple[str, ...]
    instance: Instance
    config: Optional[ChaseConfig] = None


@dataclass(frozen=True)
class ChaseCase:
    """A registered chase scenario plus its feature flags.

    ``validate`` asserts the case still exercises what it was written
    for (a failure actually fails, a recursive case actually runs
    multiple rounds, a null case actually invents nulls) — differential
    suites call it on their *serial* baseline so a drifted case cannot
    silently degrade into comparing two trivial runs.
    """

    label: str
    flags: FrozenSet[str]
    build: Callable[[], ChaseSetup]
    validate: Optional[Callable[[object], None]] = None

    def check_baseline(self, result) -> None:
        if self.validate is not None:
            self.validate(result)


def _join_copy() -> ChaseSetup:
    deps = (
        tgd(
            Conjunction(atoms=(Atom("S", (x, y)), Atom("R", (y, z)))),
            (Atom("T", (x, z)),),
            name="copy",
        ),
    )
    return ChaseSetup(deps, ("S", "R"), dense_pair_instance())


def _denial_failure() -> ChaseSetup:
    deps = (
        tgd(
            Conjunction(atoms=(Atom("S", (x, y)), Atom("R", (y, z)))),
            (Atom("T", (x, z)),),
            name="copy",
        ),
        denial(Conjunction(atoms=(Atom("T", (x, x)),)), name="no_loop"),
    )
    return ChaseSetup(deps, ("S", "R"), dense_pair_instance())


def _egd_constant_clash() -> ChaseSetup:
    deps = (
        egd(
            Conjunction(atoms=(Atom("S", (x, y)), Atom("S", (x, z)))),
            (Equality(y, z),),
            name="key",
        ),
    )
    # Two constant values under one key: the egd must hard-fail.
    instance = dense_pair_instance()
    instance.add(Atom("S", (Constant(3), Constant(998))))
    instance.add(Atom("S", (Constant(7), Constant(999))))
    return ChaseSetup(deps, (), instance)


def _cross_round_feed() -> ChaseSetup:
    # Dep 0 enforces facts that feed dep 1's premise *within* later
    # delta rounds (regression guard for replica delta bookkeeping).
    deps = (
        tgd(
            Conjunction(atoms=(Atom("P", (x, y)), Atom("Q", (y, z)))),
            (Atom("P", (x, z)),),
            name="close",
        ),
        tgd(
            Conjunction(atoms=(Atom("P", (x, y)),)),
            (Atom("R", (x, y, z)),),  # z existential
            name="tag",
        ),
    )
    instance = Instance()
    for chain in range(40):  # chains long enough for several rounds
        base = chain * 10
        for hop in range(4):
            instance.add(
                Atom("Q", (Constant(base + hop), Constant(base + hop + 1)))
            )
        instance.add(Atom("P", (Constant(base - 1), Constant(base))))
    return ChaseSetup(deps, ("Q",), instance)


def _null_unification() -> ChaseSetup:
    # tgd invents nulls, egd then unifies them: the canonical-order
    # merge must reproduce the exact same null ids and unions.
    deps = (
        tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Atom("T", (x, z)),),  # z existential -> fresh null per x
            name="invent",
        ),
        egd(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("T", (x, z)))),
            (Equality(y, z),),
            name="unify",
        ),
    )
    return ChaseSetup(deps, ("S", "R"), dense_pair_instance())


def _transitive_closure() -> ChaseSetup:
    # Recursion through the target relation itself: each round's output
    # re-enters the same premise until the closure fixpoint.
    deps = (
        tgd(
            Conjunction(atoms=(Atom("E", (x, y)),)),
            (Atom("P", (x, y)),),
            name="base",
        ),
        tgd(
            Conjunction(atoms=(Atom("P", (x, y)), Atom("E", (y, z)))),
            (Atom("P", (x, z)),),
            name="step",
        ),
    )
    instance = Instance()
    for chain in range(12):
        base = chain * 100
        for hop in range(6):
            instance.add(Atom("E", (Constant(base + hop), Constant(base + hop + 1))))
    return ChaseSetup(deps, ("E",), instance)


def _joint_acyclic_feed() -> ChaseSetup:
    # Terminating, but only provably so by *joint* acyclicity: the
    # position graph has a cycle through the special edge P.0 ⇒ Q.1
    # (P.0 → Q.1 ⇒ S.0 → P.0), yet the invented nulls in Q.1 can never
    # flow back into `invent`'s premise because `close` joins S against
    # the constants-only T.  Weak acyclicity cannot see that.
    deps = (
        tgd(
            Conjunction(atoms=(Atom("P", (x,)),)),
            (Atom("Q", (x, y)),),  # y existential
            name="invent",
        ),
        tgd(
            Conjunction(atoms=(Atom("Q", (x, y)),)),
            (Atom("S", (y,)),),
            name="project",
        ),
        tgd(
            Conjunction(atoms=(Atom("S", (x,)), Atom("T", (x,)))),
            (Atom("P", (x,)),),
            name="close",
        ),
    )
    instance = Instance()
    for i in range(30):
        instance.add(Atom("P", (Constant(i),)))
        instance.add(Atom("T", (Constant(1000 + i),)))
    return ChaseSetup(deps, ("P", "T"), instance)


def _super_weak_constant_guard() -> ChaseSetup:
    # Terminating, but only provably so by *super-weak* acyclicity: the
    # per-variable Mov sets of joint acyclicity collapse B's positions,
    # while Marnette's place-level unification sees that the 'done'
    # stamp written by `stamp` can never unify with the 'todo' guard in
    # `requeue`'s body.
    deps = (
        tgd(
            Conjunction(atoms=(Atom("A", (x,)),)),
            (Atom("B", (z, x, Constant("done"))),),  # z existential
            name="stamp",
        ),
        tgd(
            Conjunction(atoms=(Atom("B", (x, y, Constant("todo"))),)),
            (Atom("A", (x,)),),
            name="requeue",
        ),
    )
    instance = Instance()
    for i in range(25):
        instance.add(Atom("A", (Constant(i),)))
    instance.add(Atom("B", (Constant(500), Constant(501), Constant("todo"))))
    return ChaseSetup(deps, ("A", "B"), instance)


def _bloom_spill() -> ChaseSetup:
    deps = (
        tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Atom("T", (x, y)),),
            name="copy",
        ),
    )
    config = ChaseConfig(policy="oblivious", oblivious_trigger_limit=5)
    return ChaseSetup(deps, ("S", "R"), dense_pair_instance(), config)


def ded_sweep_dependencies(
    deds: int = 2, insert_branches: int = 1
) -> Tuple[Dependency, ...]:
    """Deds whose cheap equality branch fails under duplicate keys.

    Each ded's branch order puts the equality branch first (it has no
    atoms), so a greedy sweep must walk past every selection containing
    one before reaching the all-insert selection that succeeds — the
    disjunct-heavy shape the branch racer is for.
    """
    out: List[Dependency] = [
        tgd(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (Atom("T", (x, y)),),
            name="copy",
        ),
    ]
    for i in range(deds):
        disjuncts = [Disjunct(equalities=(Equality(y, z),))]
        for j in range(insert_branches):
            disjuncts.append(
                Disjunct(atoms=(Atom(f"W{i}_{j}", (x, y, z, w)),))
            )
        out.append(
            ded(
                Conjunction(atoms=(Atom(f"K{i}", (x, y)), Atom(f"K{i}", (x, z)))),
                tuple(disjuncts),
                name=f"d{i}",
            )
        )
    return tuple(out)


def ded_sweep_instance(deds: int = 2, rows: int = 40) -> Instance:
    instance = Instance()
    for i in range(rows):
        instance.add(Atom("S", (Constant(i), Constant(i % 7))))
    for i in range(deds):
        instance.add(Atom(f"K{i}", (Constant(1), Constant(10))))
        instance.add(Atom(f"K{i}", (Constant(1), Constant(20))))
    return instance


def ded_sweep_relations(deds: int = 2) -> Tuple[str, ...]:
    return ("S",) + tuple(f"K{i}" for i in range(deds))


def _ded_sweep() -> ChaseSetup:
    return ChaseSetup(
        ded_sweep_dependencies(deds=2),
        ded_sweep_relations(deds=2),
        ded_sweep_instance(deds=2),
    )


def _ded_all_fail() -> ChaseSetup:
    # Every disjunct of the ded is an equality over distinct constants:
    # all derived scenarios fail, exercising the sweep-exhausted path.
    deps = (
        ded(
            Conjunction(atoms=(Atom("K0", (x, y)), Atom("K0", (x, z)))),
            (
                Disjunct(equalities=(Equality(y, z),)),
                Disjunct(equalities=(Equality(y, x),)),
            ),
            name="impossible",
        ),
    )
    instance = Instance()
    instance.add(Atom("K0", (Constant(1), Constant(10))))
    instance.add(Atom("K0", (Constant(1), Constant(20))))
    return ChaseSetup(deps, ("K0",), instance)


def _expect_ok(result) -> None:
    assert result.ok, result.failure_reason


def _expect_denial(result) -> None:
    assert not result.ok and "denial" in result.failure_reason


def _expect_constant_clash(result) -> None:
    assert not result.ok
    assert "cannot equate distinct constants" in result.failure_reason


def _expect_multi_round(result) -> None:
    # The recursion must actually feed later delta rounds, or the case
    # no longer guards replica/delta bookkeeping.
    assert result.ok and result.stats.rounds > 3, result.stats.rounds


def _expect_null_unification(result) -> None:
    assert result.ok
    assert result.stats.nulls_created > 0


def _expect_sweep_winner(result) -> None:
    # 2 two-branch deds with failing equality branches: the winner is
    # the all-insert selection, the last of the 4.
    assert result.ok and result.scenarios_tried == 4


def _expect_sweep_exhausted(result) -> None:
    assert not result.ok
    assert "derived scenarios failed" in result.failure_reason


CHASE_CASES: Tuple[ChaseCase, ...] = (
    ChaseCase("join-copy", frozenset(), _join_copy, _expect_ok),
    ChaseCase(
        "denial-failure", frozenset({FAILING}), _denial_failure,
        _expect_denial,
    ),
    ChaseCase(
        "egd-constant-clash", frozenset({FAILING}), _egd_constant_clash,
        _expect_constant_clash,
    ),
    ChaseCase(
        "cross-round-feed", frozenset({RECURSIVE}), _cross_round_feed,
        _expect_multi_round,
    ),
    ChaseCase(
        "null-unification", frozenset(), _null_unification,
        _expect_null_unification,
    ),
    ChaseCase(
        "transitive-closure", frozenset({RECURSIVE}), _transitive_closure,
        _expect_multi_round,
    ),
    ChaseCase(
        "joint-acyclic-feed", frozenset(), _joint_acyclic_feed,
        _expect_null_unification,
    ),
    ChaseCase(
        "super-weak-constant-guard", frozenset(), _super_weak_constant_guard,
        _expect_null_unification,
    ),
    ChaseCase("bloom-spill", frozenset({BLOOM_SPILL}), _bloom_spill, _expect_ok),
    ChaseCase(
        "ded-sweep", frozenset({DISJUNCTIVE}), _ded_sweep,
        _expect_sweep_winner,
    ),
    ChaseCase(
        "ded-all-fail", frozenset({DISJUNCTIVE, FAILING}), _ded_all_fail,
        _expect_sweep_exhausted,
    ),
)


def chase_cases(
    require: Iterable[str] = (), exclude: Iterable[str] = ()
) -> List[ChaseCase]:
    """Registered chase cases, filtered by feature flags."""
    wanted = frozenset(require)
    unwanted = frozenset(exclude)
    return [
        case
        for case in CHASE_CASES
        if wanted <= case.flags and not (unwanted & case.flags)
    ]
