"""Tests for the full disjunctive chase (universal model sets)."""


from repro.chase.disjunctive import disjunctive_chase
from repro.chase.universal import satisfies
from repro.logic.atoms import Atom, Conjunction, Equality
from repro.logic.dependencies import Disjunct, ded, denial, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance

x, y = Variable("x"), Variable("y")


def c(v):
    return Constant(v)


def choice_ded(name="d"):
    """S(x) -> A(x) | B(x): both branches always applicable."""
    return ded(
        Conjunction(atoms=(Atom("S", (x,)),)),
        (Disjunct(atoms=(Atom("A", (x,)),)), Disjunct(atoms=(Atom("B", (x,)),))),
        name=name,
    )


class TestModelSets:
    def test_single_firing_two_models(self):
        source = Instance()
        source.add_row("S", 1)
        result = disjunctive_chase([choice_ded()], source, ["S"])
        assert result.satisfiable
        assert len(result.models) == 2
        relations = {tuple(sorted(m.relations())) for m in result.models}
        assert relations == {("A",), ("B",)}

    def test_exponential_growth_in_firings(self):
        sizes = {}
        for n in (1, 2, 3, 4):
            source = Instance()
            for i in range(n):
                source.add_row("S", i)
            result = disjunctive_chase([choice_ded()], source, ["S"])
            sizes[n] = len(result.models)
        assert sizes == {1: 2, 2: 4, 3: 8, 4: 16}

    def test_branch_pruned_by_denial(self):
        block_a = denial(Conjunction(atoms=(Atom("A", (x,)),)), name="no_a")
        source = Instance()
        source.add_row("S", 1)
        result = disjunctive_chase([choice_ded(), block_a], source, ["S"])
        assert len(result.models) == 1
        assert result.models[0].size("B") == 1
        assert result.failures >= 1

    def test_unsatisfiable_when_all_branches_blocked(self):
        block_a = denial(Conjunction(atoms=(Atom("A", (x,)),)), name="no_a")
        block_b = denial(Conjunction(atoms=(Atom("B", (x,)),)), name="no_b")
        source = Instance()
        source.add_row("S", 1)
        result = disjunctive_chase([choice_ded(), block_a, block_b], source, ["S"])
        assert not result.satisfiable
        assert result.models == []

    def test_equality_branch_with_constants_prunes_itself(self):
        dependency = ded(
            Conjunction(atoms=(Atom("S", (x, y)),)),
            (
                Disjunct(equalities=(Equality(x, y),)),
                Disjunct(atoms=(Atom("A", (x,)),)),
            ),
            name="d",
        )
        source = Instance()
        source.add_row("S", 1, 2)
        result = disjunctive_chase([dependency], source, ["S"])
        # The equality branch is inapplicable on distinct constants.
        assert len(result.models) == 1
        assert result.models[0].size("A") == 1

    def test_first_only_stops_early(self):
        source = Instance()
        for i in range(4):
            source.add_row("S", i)
        result = disjunctive_chase(
            [choice_ded()], source, ["S"], first_only=True
        )
        assert len(result.models) == 1
        assert result.leaves == 1

    def test_max_leaves_truncation(self):
        source = Instance()
        for i in range(6):
            source.add_row("S", i)
        result = disjunctive_chase(
            [choice_ded()], source, ["S"], max_leaves=5
        )
        assert result.truncated
        assert result.leaves <= 5

    def test_every_model_satisfies_dependencies(self):
        dependencies = [
            tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),)),
            choice_ded(),
        ]
        source = Instance()
        source.add_row("S", 1)
        source.add_row("S", 2)
        result = disjunctive_chase(dependencies, source, ["S"])
        for model in result.models:
            working = Instance()
            for fact in source:
                working.add(fact)
            for fact in model:
                working.add(fact)
            assert satisfies(dependencies, working)

    def test_minimize_drops_dominated_models(self):
        # S(x) -> A(x) | A(x), B(x):  the A-only model subsumes the other.
        dependency = ded(
            Conjunction(atoms=(Atom("S", (x,)),)),
            (
                Disjunct(atoms=(Atom("A", (x,)),)),
                Disjunct(atoms=(Atom("A", (x,)), Atom("B", (x,)))),
            ),
            name="d",
        )
        source = Instance()
        source.add_row("S", 1)
        full = disjunctive_chase([dependency], source, ["S"])
        # The A|B branch check: A-branch satisfied -> second never fires...
        # force distinct shapes with fresh instance per run:
        assert len(full.models) >= 1
        minimized = disjunctive_chase([dependency], source, ["S"], minimize=True)
        assert len(minimized.models) <= len(full.models)


class TestGreedyVsExhaustiveAgreement:
    def test_satisfiability_agreement_on_running_example(self, rewritten):
        from repro.chase.ded import GreedyDedChase
        from repro.scenarios.running_example import generate_source_instance

        for conflicts, expected in ((0, True), (1, False)):
            source = generate_source_instance(
                products=4, seed=5, popular_name_conflicts=conflicts
            )
            greedy = GreedyDedChase(
                rewritten.dependencies, rewritten.source_relations()
            ).run(source)
            exhaustive = disjunctive_chase(
                rewritten.dependencies, source, rewritten.source_relations()
            )
            assert exhaustive.satisfiable is expected
            assert greedy.ok is expected
