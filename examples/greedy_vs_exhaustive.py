"""Greedy ded chase vs the exact disjunctive chase (Section 3's trade-off).

"Universal model sets may have exponential size wrt the size of the
source instance" — this example makes that concrete.  Flag-view keys
rewrite into d0-shaped deds whose insert branches both survive, so the
exact disjunctive chase doubles its model set per conflicting pair
while the greedy strategy settles for one standard scenario.

Run:  python examples/greedy_vs_exhaustive.py
"""

from repro import DisjunctiveChase, GreedyDedChase, rewrite
from repro.pipeline import strip_auxiliary
from repro.reporting import Table
from repro.scenarios import flagged_instance, flagged_scenario


def main() -> None:
    scenario = flagged_scenario(flags=1)
    rewritten = rewrite(scenario)
    print(f"rewriting: {rewritten!r} "
          f"(flag key -> d0-shaped ded, both insert branches harmless)")

    table = Table(
        "Exponential universal model sets vs greedy search",
        [
            "name pairs",
            "exact models",
            "exact leaves",
            "exact time (s)",
            "greedy scenarios",
            "greedy time (s)",
        ],
    )
    for pairs in (1, 2, 3, 4, 5):
        source = flagged_instance(products=4, name_pairs=pairs, seed=1)
        exact = DisjunctiveChase(
            rewritten.dependencies, rewritten.source_relations(),
            max_leaves=4096,
        ).run(source)
        greedy = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        ).run(source)
        assert greedy.ok and exact.satisfiable
        table.add(
            pairs,
            len(exact.models),
            exact.leaves,
            exact.elapsed_seconds,
            greedy.scenarios_tried,
            greedy.stats.elapsed_seconds,
        )
    table.print()
    print(
        "\nThe exact chase doubles per conflicting pair (2^k models); the\n"
        "greedy chase runs a constant handful of derived standard\n"
        "scenarios — sound, not complete, and 'often surprisingly quick'."
    )

    # Soundness audit of the whole model set: every member of the last
    # universal model set must solve the *original* semantic scenario.
    # Whole candidates fan across the verifier's worker pool — the
    # coarse-grained unit the branch-racing search produces.
    verifier = rewritten.verifier(source, parallelism="thread:4")
    candidates = [
        strip_auxiliary(model, scenario.target_schema)
        for model in exact.models
    ]
    reports = verifier.verify_candidates(candidates)
    sound = sum(1 for report in reports if report.ok)
    print(f"\nmodel-set audit: {sound}/{len(reports)} models verified sound")
    assert sound == len(reports)


if __name__ == "__main__":
    main()
