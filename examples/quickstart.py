"""Quickstart: the paper's Section 2 example, end to end.

Builds the product/store/rating scenario exactly as printed in the
paper — views v1-v6, mappings m0-m3, key egd e0 — rewrites it (watch e0
become the ded d0), chases a small source instance, and verifies the
produced target against the original semantic scenario.

Run:  python examples/quickstart.py
"""

from repro import run_scenario
from repro.datalog import view_extent
from repro.logic.pretty import render_dependencies
from repro.scenarios import build_scenario, generate_source_instance


def main() -> None:
    # 1. The inputs of Figure 2: schemas, views, mappings, constraints.
    scenario = build_scenario()
    print("== Scenario ==")
    print(f"source: {scenario.source_schema.relation_names()}")
    print(f"target: {scenario.target_schema.relation_names()}")
    print(f"semantic schema: {scenario.target_views.view_names()}")
    print(f"mappings: {scenario.mapping_names()}, constraints: "
          f"{scenario.constraint_names()}")

    # 2. A source instance: 15 products across the three rating bands.
    source = generate_source_instance(products=15, stores=4, seed=42)
    print(f"\nsource instance: {source.size('S_Product')} products, "
          f"{source.size('S_Store')} stores")

    # 3. The whole pipeline: rewrite -> chase -> verify.
    outcome = run_scenario(scenario, source)

    print("\n== Rewritten dependencies (Σ_ST ∪ Σ_T) ==")
    print(render_dependencies(outcome.rewrite.dependencies, unicode=False))
    print(f"\nThe key egd e0 became the 3-branch ded the paper calls d0; "
          f"problematic views: {outcome.rewrite.problematic_views()}")

    print(f"\n== Chase ==\n{outcome.chase}")
    sizes = {r: outcome.target.size(r) for r in sorted(outcome.target.relations())}
    print(f"target sizes: {sizes}")

    # 4. The semantic schema over the produced target: classification.
    extents = view_extent(scenario.target_views, outcome.target)
    for view in ("PopularProduct", "AvgProduct", "UnpopularProduct"):
        ids = sorted(a.terms[0].value for a in extents[view])
        print(f"{view:18s} -> {ids}")

    # 5. Soundness check (the paper's contract).
    print(f"\n== Verification ==\n{outcome.verification}")
    assert outcome.ok


if __name__ == "__main__":
    main()
