"""Schema evolution kept transparent by semantic views (motivation iii).

The paper: "It is important to be able to run the existing mappings
against a view over the new schema that does not change, thus keeping
these modifications of the sources transparent to the users."

A legacy mapping was written against a flat ``Employee`` shape.  The
target database was later re-normalized into ``Person`` + ``Job`` (and
a ``Departed`` soft-delete table).  The legacy mapping keeps running
unchanged because it targets the *semantic* view, and GROM rewrites it
onto whatever the physical schema currently is.

Run:  python examples/schema_evolution.py
"""

from repro import run_scenario
from repro.datalog import view_extent
from repro.logic.pretty import render_dependencies
from repro.scenarios import evolution_instance, evolution_scenario


def run(with_soft_delete: bool) -> None:
    title = "v2 + soft-delete" if with_soft_delete else "v2 (normalized)"
    print(f"\n== Target schema {title} ==")
    scenario = evolution_scenario(with_soft_delete=with_soft_delete)
    source = evolution_instance(employees=25, seed=5)

    outcome = run_scenario(scenario, source)
    assert outcome.ok, outcome.chase.failure_reason

    print("The unchanged legacy mapping:")
    print(f"  {scenario.mappings[0]}")
    print("rewrites onto the current physical tables as:")
    print(render_dependencies(outcome.rewrite.dependencies, unicode=False))

    sizes = {r: outcome.target.size(r) for r in sorted(outcome.target.relations())}
    print(f"\nproduced physical target: {sizes}")

    extents = view_extent(scenario.target_views, outcome.target)
    view = "ActiveEmployee" if with_soft_delete else "Employee"
    print(f"semantic view {view}: {len(extents[view])} rows "
          f"(= {source.size('Emp')} legacy rows)")
    print(f"verification: {outcome.verification}")


def main() -> None:
    run(with_soft_delete=False)
    run(with_soft_delete=True)
    print(
        "\nSame mapping, two different physical designs — the semantic\n"
        "schema absorbed the evolution, exactly the paper's point (iii)."
    )


if __name__ == "__main__":
    main()
