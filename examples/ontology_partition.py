"""{disjoint, complete} partitions à la Figure 1, and the cost of the default class.

The running example's semantic schema (Figure 1) partitions Product
into three classes.  This example scales that pattern: ``width``
explicit classes defined conjunctively (tag table) plus a *default*
class defined by negating all of them — the ``{complete}`` annotation.

It then demonstrates the expressiveness/complexity trade-off the paper
teaches: keys on the conjunctive classes rewrite to plain egds, while a
key on the negation-defined default class rewrites to a ded whose
width grows with the partition (2*width + 1 disjuncts).

Run:  python examples/ontology_partition.py
"""

from repro import predict_deds, rewrite, run_scenario
from repro.reporting import Table
from repro.scenarios import partition_instance, partition_scenario


def main() -> None:
    table = Table(
        "Key placement vs rewriting output (partition of growing width)",
        ["width", "key on", "tgds", "egds", "deds", "denials", "max disjuncts"],
    )
    for width in (2, 3, 4, 5):
        conjunctive = rewrite(partition_scenario(width, class_keys=True))
        counts = conjunctive.counts()
        table.add(
            width, "explicit classes",
            counts.get("tgd", 0), counts.get("egd", 0),
            counts.get("ded", 0), counts.get("denial", 0), 1,
        )
        default = rewrite(partition_scenario(width, default_key=True))
        counts = default.counts()
        widest = max(
            (len(d.disjuncts) for d in default.deds()), default=0
        )
        table.add(
            width, "DEFAULT class",
            counts.get("tgd", 0), counts.get("egd", 0),
            counts.get("ded", 0), counts.get("denial", 0), widest,
        )
    table.print()

    print(
        "\nKeys over conjunctive classes stay egds; the key over the\n"
        "negation-defined default class becomes a ded with 2*width + 1\n"
        "branches — negation is powerful but it comes at a cost (§4)."
    )

    # The static analysis spots it without rewriting:
    scenario = partition_scenario(3, default_key=True)
    prediction = predict_deds(scenario)
    print(f"\nstatic analysis: may_have_deds={prediction.may_have_deds}, "
          f"views to revisit: {prediction.problematic_views()}")

    # And the pipeline still runs the conflict-free case end to end.
    outcome = run_scenario(
        scenario, partition_instance(3, items=40, seed=8)
    )
    print(f"chase on 40 items: {outcome.chase}")
    print(f"verification: {outcome.verification}")
    assert outcome.ok


if __name__ == "__main__":
    main()
