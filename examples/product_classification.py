"""The rating/classification pattern at scale, plus what happens on conflicts.

Section 4 of the paper: "one of the data sources somehow rates source
objects, and the mapping application requires to classify objects in
the target based on these ratings."  This example runs the
classification scenario over a larger store catalogue, reports the
classification the semantic schema exposes, and then deliberately
injects a key violation (two distinct popular products with the same
name) to show the greedy ded chase exploring and rejecting every branch
of d0.

Run:  python examples/product_classification.py
"""

from repro import run_scenario
from repro.datalog import view_extent
from repro.reporting import Table
from repro.scenarios import build_scenario, generate_source_instance


def classify(products: int, seed: int) -> None:
    scenario = build_scenario()
    source = generate_source_instance(
        products=products, stores=8, seed=seed, benign_name_pairs=3
    )
    outcome = run_scenario(scenario, source)
    assert outcome.ok, outcome.chase.failure_reason

    extents = view_extent(scenario.target_views, outcome.target)
    table = Table(
        f"Classification of {products} products (+3 benign name pairs)",
        ["class", "products", "share"],
    )
    total = source.size("S_Product")
    for view in ("PopularProduct", "AvgProduct", "UnpopularProduct"):
        count = len(extents[view])
        table.add(view, count, f"{100.0 * count / total:.1f}%")
    table.print()
    print(f"\nchase: {outcome.chase}")
    print(f"greedy ded scenarios tried: {outcome.chase.scenarios_tried} "
          f"(benign same-name pairs satisfy d0 through its rating branches)")
    print(f"verification: {outcome.verification}")


def conflict() -> None:
    print("\n== Injecting a key violation ==")
    scenario = build_scenario()
    source = generate_source_instance(
        products=10, seed=7, popular_name_conflicts=1
    )
    outcome = run_scenario(scenario, source)
    print(f"chase: {outcome.chase}")
    print(
        "Two *popular* products share a name: d0's equality branch equates\n"
        "distinct ids, and both rating branches hand the popular product a\n"
        "thumbs-down — which the companion denial of m2 forbids.  All\n"
        f"{outcome.chase.scenarios_tried} derived scenarios fail, so the\n"
        "semantic scenario is correctly reported unsatisfiable."
    )
    assert not outcome.ok


def main() -> None:
    classify(products=300, seed=1)
    conflict()


if __name__ == "__main__":
    main()
