"""E2 — chase scalability on rewritten (ded-free) scenarios.

Claim (§3 "Handling Complexity"): the chase engine "guarantees good
scalability in executing mappings, even on large databases".  We chase
the ded-free variant of the running example at growing source sizes and
check the growth is roughly linear (the delta-driven rounds keep
per-round work proportional to new facts).
"""

import time

import pytest

from repro.chase.engine import StandardChase
from repro.reporting import Table
from repro.scenarios.running_example import generate_source_instance

from conftest import print_experiment_table, quick_mode, record_bench_json

SIZES = [100, 500, 1000, 2000]
QUICK_SIZES = [100, 500]


@pytest.mark.parametrize("products", SIZES)
def test_bench_chase_scaling(benchmark, running_rewritten_no_key, products):
    source = generate_source_instance(products=products, stores=10, seed=2)
    engine = StandardChase(
        running_rewritten_no_key.dependencies,
        running_rewritten_no_key.source_relations(),
    )

    result = benchmark.pedantic(
        lambda: engine.run(source), rounds=3, iterations=1
    )
    assert result.ok
    assert result.target.size("T_Product") == 2 * products


def test_report_e2(benchmark, running_rewritten_no_key):
    table = Table(
        "E2: chase scaling (ded-free running example)",
        ["products", "target facts", "nulls", "rounds", "time (s)", "facts/s"],
    )
    sizes = QUICK_SIZES if quick_mode() else SIZES
    times = {}
    for products in sizes:
        source = generate_source_instance(products=products, stores=10, seed=2)
        engine = StandardChase(
            running_rewritten_no_key.dependencies,
            running_rewritten_no_key.source_relations(),
        )
        start = time.perf_counter()
        result = engine.run(source)
        elapsed = time.perf_counter() - start
        times[products] = elapsed
        table.add(
            products,
            len(result.target),
            result.stats.nulls_created,
            result.stats.rounds,
            elapsed,
            int(len(result.target) / elapsed) if elapsed else 0,
        )
    print_experiment_table(table)
    record_bench_json(
        "e2_chase_scaling",
        {
            "quick": quick_mode(),
            "seconds_by_products": {str(k): v for k, v in times.items()},
        },
    )
    # Shape check: the compiled evaluator keeps the chase near-linear —
    # growing the data by Nx may cost at most ~1.3Nx the time (1.3x
    # headroom for cache effects), plus a small absolute floor so timer
    # noise on tiny runs cannot flake the bound.  This runs in quick
    # (CI) mode too, so a superlinear regression fails the smoke job.
    fact_ratio = sizes[-1] / sizes[0]
    assert times[sizes[-1]] <= times[sizes[0]] * fact_ratio * 1.3 + 0.05, times
