"""E4 — intricate constraints make many derived scenarios fail.

Claim (§4): "when the constraints are more intricate, the greedy chase
will take considerably more time, due to the fact that many of the
generated scenarios fail to generate a solution, and new ones need to
be executed."

With ``k`` flag keys, each rewritten ded's *equality* branch fails on
any conflicting pair (distinct constant ids), so every selection that
keeps any ded on its preferred equality branch dies; the greedy search
must walk past all cheaper selections before reaching the first
all-insert selection.  The number of failing scenarios grows
combinatorially with k — exactly the paper's observation.
"""

import pytest

from repro.chase.ded import GreedyDedChase
from repro.core.rewriter import rewrite
from repro.reporting import Table
from repro.scenarios.generators import flagged_instance, flagged_scenario

from conftest import print_experiment_table

FLAGS = [1, 2, 3, 4]


@pytest.mark.parametrize("flags", [1, 2, 3])
def test_bench_greedy_with_failures(benchmark, flags):
    rewritten = rewrite(flagged_scenario(flags=flags))
    source = flagged_instance(products=4, name_pairs=1, seed=3)
    engine = GreedyDedChase(
        rewritten.dependencies, rewritten.source_relations(), max_scenarios=512
    )
    result = benchmark.pedantic(lambda: engine.run(source), rounds=2, iterations=1)
    assert result.ok


def test_report_e4(benchmark):
    table = Table(
        "E4: failing derived scenarios vs number of ded constraints",
        [
            "flag keys",
            "deds",
            "scenarios tried",
            "failed",
            "time (s)",
        ],
    )
    tried = {}
    for flags in FLAGS:
        rewritten = rewrite(flagged_scenario(flags=flags))
        source = flagged_instance(products=4, name_pairs=1, seed=3)
        engine = GreedyDedChase(
            rewritten.dependencies,
            rewritten.source_relations(),
            max_scenarios=512,
        )
        result = engine.run(source)
        assert result.ok, result.failure_reason
        tried[flags] = result.scenarios_tried
        table.add(
            flags,
            len(rewritten.deds()),
            result.scenarios_tried,
            result.scenarios_tried - 1,
            result.stats.elapsed_seconds,
        )
    print_experiment_table(table)
    # Shape: the failing-scenario count grows with the constraint count,
    # strictly (each extra ded adds more cheap-but-doomed selections).
    assert tried[1] < tried[2] < tried[3] < tried[4]
