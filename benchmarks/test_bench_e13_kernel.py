"""E13 — columnar kernel micro-benchmarks.

The columnar instance kernel replaces per-tuple ``Atom`` objects with
struct-of-arrays columns over an interned term pool; the whole chase
hot path rides that representation.  This experiment measures the
kernel's primitive operations in isolation so regressions show up
before they blur into end-to-end chase timings:

* **intern** — terms/second into a fresh :class:`TermPool`;
* **append** — bulk encoded-row inserts (``extend_encoded``) vs the
  reference kernel's atom-object inserts on identical data (the
  headline: encoded must stay ≥3x faster, asserted at 2.5x for CI
  headroom), with the per-row ``add_encoded`` rate tracked alongside;
* **facts_since** — reading one generation window off the insertion
  log;
* **index_build** — cold hash-index construction over all rows;
* **probe** — hash-join key probes against the live index.

``GROM_BENCH_QUICK=1`` shrinks the workload for the CI smoke job; the
JSON artifact (``BENCH_e13_kernel.json``) feeds ``benchmarks/trend.py``
either way (``ns_per_op`` leaves are lower-is-better).
"""

import time

from repro.logic.atoms import Atom
from repro.logic.terms import Constant
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance, TermPool
from repro.reporting import Table

from conftest import print_experiment_table, quick_mode, record_bench_json

ROWS = 120_000
TERMS = 200_000
QUICK_ROWS = 6_000
QUICK_TERMS = 10_000
#: Rows per join key — the probe section's fan-out.
GROUP = 8


def test_bench_e13_kernel():
    quick = quick_mode()
    rows_n = QUICK_ROWS if quick else ROWS
    terms_n = QUICK_TERMS if quick else TERMS
    payload = {"quick": quick}
    table = Table(
        "E13: columnar kernel micro-benches", ["section", "metric", "value"]
    )

    # -- intern: terms -> dense codes ----------------------------------
    pool = TermPool()
    constants = [Constant(f"t{i}") for i in range(terms_n)]
    encode = pool.encode
    start = time.perf_counter()
    for constant in constants:
        encode(constant)
    intern_seconds = time.perf_counter() - start
    assert len(pool) == terms_n
    payload["intern"] = {
        "terms": terms_n,
        "ns_per_op": intern_seconds / terms_n * 1e9,
        "terms_per_second": (
            terms_n / intern_seconds if intern_seconds else 0.0
        ),
    }
    table.add("intern", "ns/op", round(payload["intern"]["ns_per_op"], 1))

    # -- append: atom objects vs encoded rows --------------------------
    # Identical data down both kernels' bulk-insert APIs, payload
    # pre-built outside the timed region: atoms for the reference
    # set-based Instance (``add_all`` is a plain ``add`` loop), code
    # tuples for the columnar kernel's ``extend_encoded`` — the path
    # engine seeding, replica fact replay and pickle rehydration ride.
    atoms = [
        Atom("R", (Constant(i // GROUP), Constant(i), Constant(i % 17)))
        for i in range(rows_n)
    ]
    reference = Instance()
    start = time.perf_counter()
    reference.add_all(atoms)
    atom_seconds = time.perf_counter() - start

    columnar = ColumnarInstance(pool=TermPool())
    encoded_rows = [columnar.encode_row(atom.terms) for atom in atoms]
    start = time.perf_counter()
    columnar.extend_encoded("R", encoded_rows)
    encoded_seconds = time.perf_counter() - start
    assert len(columnar) == len(reference) == rows_n

    # Per-row add_encoded (the enforce phase inserts rows one rule
    # firing at a time) tracked alongside the bulk headline.
    single = ColumnarInstance(pool=TermPool())
    single_rows = [single.encode_row(atom.terms) for atom in atoms]
    add_encoded = single.add_encoded
    start = time.perf_counter()
    for row in single_rows:
        add_encoded("R", row)
    single_seconds = time.perf_counter() - start
    assert len(single) == rows_n

    speedup = atom_seconds / encoded_seconds if encoded_seconds else 0.0
    payload["append"] = {
        "rows": rows_n,
        "atom_rows_per_second": (
            rows_n / atom_seconds if atom_seconds else 0.0
        ),
        "encoded_rows_per_second": (
            rows_n / encoded_seconds if encoded_seconds else 0.0
        ),
        "single_row_rows_per_second": (
            rows_n / single_seconds if single_seconds else 0.0
        ),
        "encoded_vs_atom_speedup": speedup,
    }
    table.add("append", "encoded vs atom speedup", round(speedup, 2))

    # -- facts_since: one generation window off the insertion log ------
    generation = columnar.bump_generation()
    for i in range(64):
        columnar.add_encoded("Delta", (i, i + 1))
    start = time.perf_counter()
    delta = columnar.rows_since(generation)
    read_seconds = time.perf_counter() - start
    assert len(delta) == 64
    payload["facts_since"] = {
        "delta_rows": len(delta),
        "read_seconds": read_seconds,
    }
    table.add("facts_since", "window read (s)", round(read_seconds, 6))

    # -- index build: cold hash index over every live row --------------
    start = time.perf_counter()
    index = columnar.encoded_index("R", (0,))
    build_seconds = time.perf_counter() - start
    assert sum(len(bucket) for bucket in index.values()) == rows_n
    payload["index_build"] = {"rows": rows_n, "build_seconds": build_seconds}
    table.add("index_build", "build (s)", round(build_seconds, 4))

    # -- probe: one key lookup per row against the live index ----------
    keys = [row[:1] for row in encoded_rows]
    lookup = index.get
    rows_touched = 0
    start = time.perf_counter()
    for key in keys:
        bucket = lookup(key)
        if bucket is not None:
            rows_touched += len(bucket)
    probe_seconds = time.perf_counter() - start
    assert rows_touched == rows_n * GROUP
    payload["probe"] = {
        "probes": rows_n,
        "ns_per_op": probe_seconds / rows_n * 1e9,
        "rows_touched": rows_touched,
    }
    table.add("probe", "ns/op", round(payload["probe"]["ns_per_op"], 1))

    print_experiment_table(table)
    record_bench_json("e13_kernel", payload)
    # The tentpole's headline number, with headroom for noisy CI boxes:
    # the full run holds ~3.9x, so 2.5x failing means the encoded
    # append path genuinely regressed, not that the machine was busy.
    assert speedup >= 2.5, payload["append"]
