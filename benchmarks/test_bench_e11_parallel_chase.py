"""E11 — parallel chase: sharded match enumeration vs. serial.

The enumerate phase of a chase round is a read-only join, so the
sharded engine (``ChaseConfig.parallelism``) fans it across forked
replica workers while enforcement stays a deterministic serial merge.
This experiment chases a join-heavy workload — triangle listing over a
seeded random digraph, the classical enumeration-bound shape (large
intermediate fan-out, few final matches) — serial and sharded, asserts
the results are bit-identical, and measures the speedup.

CI runs the quick sizes and gates the speedup at the largest one: the
1.5× floor assumes all 4 workers get a core, so it scales by
``min(workers, cpus) / workers`` and is skipped (with an explicit log
line) below 2 usable CPUs, where the sharded run cannot physically
beat serial — the determinism half is always asserted.
"""

import time

from repro.chase.engine import ChaseConfig, StandardChase
from repro.logic.atoms import Atom, Comparison, Conjunction
from repro.logic.dependencies import tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.reporting import Table

from conftest import (
    parallel_speedup_gate,
    print_experiment_table,
    quick_mode,
    record_bench_json,
)

WORKERS = 4
SPEEDUP_FLOOR = 1.5

# (nodes, edges): sparse digraphs where the triangle join's intermediate
# work (edges × out-degree) dwarfs its output — many nodes, modest
# out-degree, so enumeration dominates and few matches flow back.
SIZES = [(800, 8000), (2000, 30000), (3500, 70000)]
QUICK_SIZES = [(800, 8000), (2000, 30000)]


def _triangle_dependencies():
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    premise = Conjunction(
        atoms=(Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))),
        # Keep only the rotation starting at the smallest node: the
        # checks cull inside the join, so the enumeration work stays but
        # each triangle is reported (and enforced, and shipped back from
        # the shard workers) exactly once.
        comparisons=(Comparison("<", x, y), Comparison("<", x, z)),
    )
    return [tgd(premise, (Atom("Tri", (x, y, z)),), name="triangles")]


def _edge_instance(nodes: int, edges: int, seed: int = 11) -> Instance:
    import random

    rng = random.Random(seed)
    instance = Instance()
    added = 0
    while added < edges:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b and instance.add(
            Atom("E", (Constant(a), Constant(b)))
        ):
            added += 1
    return instance


def _chase(source: Instance, parallelism: str):
    engine = StandardChase(
        _triangle_dependencies(),
        source_relations=("E",),
        config=ChaseConfig(parallelism=parallelism),
    )
    start = time.perf_counter()
    result = engine.run(source)
    return result, time.perf_counter() - start


def test_report_e11():
    table = Table(
        "E11: parallel chase (sharded enumerate, serial merge)",
        ["nodes", "edges", "triangles", "serial (s)", "sharded (s)",
         "speedup", "mode"],
    )
    sizes = QUICK_SIZES if quick_mode() else SIZES
    cpus, effective_workers, floor = parallel_speedup_gate(
        WORKERS, SPEEDUP_FLOOR
    )
    by_size = {}
    last = None
    for nodes, edges in sizes:
        source = _edge_instance(nodes, edges)
        serial_result, serial_seconds = _chase(source, "serial")
        sharded_result, sharded_seconds = _chase(
            source, f"process:{WORKERS}"
        )
        # Sharding must never change the result: identical instances,
        # stats and status, whatever the hardware.
        assert serial_result.ok and sharded_result.ok
        assert sharded_result.target == serial_result.target
        assert (
            sharded_result.stats.premise_matches
            == serial_result.stats.premise_matches
        )
        speedup = serial_seconds / sharded_seconds if sharded_seconds else 0.0
        by_size[f"{nodes}x{edges}"] = {
            "serial_seconds": serial_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": speedup,
        }
        last = speedup
        table.add(
            nodes, edges, serial_result.target.size("Tri"),
            round(serial_seconds, 4), round(sharded_seconds, 4),
            round(speedup, 2), sharded_result.sharding,
        )
    print_experiment_table(table)
    record_bench_json(
        "e11_parallel_chase",
        {
            "quick": quick_mode(),
            "workers": WORKERS,
            "cpus": cpus,
            "effective_workers": effective_workers,
            "speedup_floor": floor,
            "speedup_asserted": floor is not None,
            "by_size": by_size,
        },
    )
    # The speedup claim needs at least two workers actually running in
    # parallel; below that the sharded chase degrades gracefully (same
    # results, no speedup), so only the determinism half is asserted.
    if floor is None:
        print(
            f"e11 speedup gate SKIPPED: {cpus} usable CPU(s) < 2, the "
            f"sharded chase cannot beat serial here (measured "
            f"{last:.2f}x; determinism still asserted)"
        )
    else:
        assert last >= floor, (
            f"sharded chase only {last:.2f}x serial at the largest size "
            f"(wanted >= {floor:.2f}x with {effective_workers} of "
            f"{WORKERS} workers on {cpus} CPUs)"
        )
