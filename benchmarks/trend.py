#!/usr/bin/env python3
"""Diff two sets of ``BENCH_*.json`` artifacts and flag regressions.

CI uploads the quick-mode bench measurements of every PR as
``BENCH_*.json`` files.  This script compares the current run against
the previous one (restored from the workflow cache) and prints each
metric's movement, flagging changes past a threshold (default 20%) in
the metric's *bad* direction:

* metrics whose key mentions time (``seconds``, ``_s``, ``per_probe``)
  regress by going **up**;
* metrics whose key mentions rate (``speedup``, ``throughput``,
  ``per_sec``, ``per_second``) regress by going **down**;
* other numeric metrics are reported when they move but never flagged —
  sizes and counts have no universal polarity.

Exit status is 1 when any regression was flagged (CI surfaces it as a
warning rather than failing the build: quick-mode numbers on shared
runners are noisy, and the artifact history is the ground truth).

Usage::

    python benchmarks/trend.py CURRENT_DIR PREVIOUS_DIR [--threshold 0.2]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

LOWER_IS_BETTER = ("seconds", "per_probe", "elapsed", "wall")
HIGHER_IS_BETTER = ("speedup", "throughput", "per_sec", "per_second", "rate")


def flatten(payload: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Numeric leaves of a nested JSON payload as dotted paths."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(payload[key], path)
    elif isinstance(payload, bool):
        return  # True/False are not measurements
    elif isinstance(payload, (int, float)):
        yield prefix, float(payload)


def direction(path: str) -> int:
    """-1: lower is better, +1: higher is better, 0: no polarity."""
    lowered = path.lower()
    if any(marker in lowered for marker in HIGHER_IS_BETTER):
        return 1
    if any(marker in lowered for marker in LOWER_IS_BETTER):
        return -1
    return 0


def load_directory(directory: str) -> Dict[str, Dict[str, float]]:
    """``{bench name: {metric path: value}}`` for every BENCH_*.json."""
    out: Dict[str, Dict[str, float]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"trend: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        out[name] = dict(flatten(payload))
    return out


def compare(
    current: Dict[str, Dict[str, float]],
    previous: Dict[str, Dict[str, float]],
    threshold: float,
) -> Tuple[List[str], List[str]]:
    """(regressions, informational movements) as printable lines."""
    regressions: List[str] = []
    movements: List[str] = []
    for bench in sorted(current):
        if bench not in previous:
            movements.append(f"{bench}: new benchmark (no previous run)")
            continue
        before, after = previous[bench], current[bench]
        for metric in sorted(after):
            if metric not in before:
                continue
            old, new = before[metric], after[metric]
            if old == new:
                continue
            base = max(abs(old), 1e-12)
            change = (new - old) / base
            line = (
                f"{bench}.{metric}: {old:g} -> {new:g} "
                f"({change:+.1%})"
            )
            polarity = direction(metric)
            worse = (polarity == -1 and change > threshold) or (
                polarity == 1 and change < -threshold
            )
            if worse:
                regressions.append(f"REGRESSION {line}")
            elif abs(change) > threshold:
                movements.append(line)
    return regressions, movements


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="directory with this run's BENCH_*.json")
    parser.add_argument("previous", help="directory with the last run's BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative change flagged as a regression (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    current = load_directory(args.current)
    previous = load_directory(args.previous)
    if not current:
        print(f"trend: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 0
    if not previous:
        print("trend: no previous measurements; nothing to compare")
        return 0

    regressions, movements = compare(current, previous, args.threshold)
    for line in movements:
        print(line)
    for line in regressions:
        print(line)
    if regressions:
        print(
            f"trend: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%}"
        )
        return 1
    print("trend: no regressions past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
