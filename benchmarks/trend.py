#!/usr/bin/env python3
"""Diff ``BENCH_*.json`` artifacts against a rolling history and flag
regressions.

CI uploads the quick-mode bench measurements of every PR as
``BENCH_*.json`` files and keeps the last few runs in the workflow
cache (one ``run-*`` subdirectory per run).  This script compares the
current run against the **per-metric median** of that history — a
single noisy neighbour on a shared runner can no longer manufacture or
mask a regression — and prints each metric's movement, flagging changes
past a threshold (default 20%) in the metric's *bad* direction:

* metrics whose key mentions time (``seconds``, ``_s``, ``per_probe``)
  regress by going **up**;
* metrics whose key mentions rate (``speedup``, ``throughput``,
  ``per_sec``, ``per_second``) regress by going **down**;
* other numeric metrics are reported when they move but never flagged —
  sizes and counts have no universal polarity.

Exit status is 1 when any regression was flagged (CI surfaces it as a
warning rather than failing the build: quick-mode numbers on shared
runners are noisy, and the artifact history is the ground truth).

Usage::

    python benchmarks/trend.py CURRENT_DIR HISTORY_DIR [--threshold 0.2]
                                                       [--window 5]

``HISTORY_DIR`` either contains ``BENCH_*.json`` directly (a single
previous run — the pre-rolling layout, still supported) or ``run-*``
subdirectories, of which the lexicographically-last ``--window`` are
used (CI names them by zero-padded run number, so that is recency
order).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import statistics
import sys
from typing import Dict, Iterator, List, Tuple

# p50/p99 cover the flight recorder's per-phase latency digests
# (BENCH_trace_phases.json and BatchSummary.phase_latencies leaves);
# ns_per_op covers the columnar kernel's per-operation micro-benches
# (BENCH_e13_kernel.json intern/probe leaves).
LOWER_IS_BETTER = (
    "seconds", "per_probe", "elapsed", "wall", "p50", "p99", "ns_per_op"
)
HIGHER_IS_BETTER = (
    "speedup", "throughput", "per_sec", "per_second", "coverage"
)
# Token-matched, not substring-matched: "rate" as a substring would
# capture phase names like "chase.enumerate".
HIGHER_IS_BETTER_TOKENS = ("rate",)


def flatten(payload: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Numeric leaves of a nested JSON payload as dotted paths."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(payload[key], path)
    elif isinstance(payload, bool):
        return  # True/False are not measurements
    elif isinstance(payload, (int, float)):
        yield prefix, float(payload)


def direction(path: str) -> int:
    """-1: lower is better, +1: higher is better, 0: no polarity."""
    lowered = path.lower()
    if any(marker in lowered for marker in HIGHER_IS_BETTER):
        return 1
    if any(marker in lowered for marker in LOWER_IS_BETTER):
        return -1
    tokens = re.split(r"[^a-z0-9]+", lowered)
    if any(marker in tokens for marker in HIGHER_IS_BETTER_TOKENS):
        return 1
    return 0


def load_directory(directory: str) -> Dict[str, Dict[str, float]]:
    """``{bench name: {metric path: value}}`` for every BENCH_*.json."""
    out: Dict[str, Dict[str, float]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"trend: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        out[name] = dict(flatten(payload))
    return out


def load_history(
    directory: str, window: int
) -> List[Dict[str, Dict[str, float]]]:
    """The last ``window`` runs under a history directory, oldest first.

    A directory holding ``BENCH_*.json`` directly is a single run (the
    pre-rolling cache layout); otherwise every ``run-*`` subdirectory is
    one run, and the lexicographically-last ``window`` of them form the
    baseline (CI names them by zero-padded run number).
    """
    flat = load_directory(directory)
    if flat:
        return [flat]
    run_dirs = sorted(
        path
        for path in glob.glob(os.path.join(directory, "run-*"))
        if os.path.isdir(path)
    )
    runs = []
    for path in run_dirs[-max(1, window):]:
        loaded = load_directory(path)
        if loaded:
            runs.append(loaded)
    return runs


def median_baseline(
    runs: List[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Per-metric median across runs — the comparison baseline.

    A metric's median is taken over the runs that recorded it, so a
    newly-added benchmark needs no full window before it is tracked.
    """
    values: Dict[str, Dict[str, List[float]]] = {}
    for run in runs:
        for bench, metrics in run.items():
            bucket = values.setdefault(bench, {})
            for metric, value in metrics.items():
                bucket.setdefault(metric, []).append(value)
    return {
        bench: {
            metric: statistics.median(series)
            for metric, series in metrics.items()
        }
        for bench, metrics in values.items()
    }


def compare(
    current: Dict[str, Dict[str, float]],
    previous: Dict[str, Dict[str, float]],
    threshold: float,
) -> Tuple[List[str], List[str]]:
    """(regressions, informational movements) as printable lines."""
    regressions: List[str] = []
    movements: List[str] = []
    for bench in sorted(current):
        if bench not in previous:
            movements.append(f"{bench}: new benchmark (no previous run)")
            continue
        before, after = previous[bench], current[bench]
        for metric in sorted(after):
            if metric not in before:
                continue
            old, new = before[metric], after[metric]
            if old == new:
                continue
            base = max(abs(old), 1e-12)
            change = (new - old) / base
            line = (
                f"{bench}.{metric}: {old:g} -> {new:g} "
                f"({change:+.1%})"
            )
            polarity = direction(metric)
            worse = (polarity == -1 and change > threshold) or (
                polarity == 1 and change < -threshold
            )
            if worse:
                regressions.append(f"REGRESSION {line}")
            elif abs(change) > threshold:
                movements.append(line)
    return regressions, movements


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="directory with this run's BENCH_*.json")
    parser.add_argument(
        "previous",
        help="history directory: run-* subdirectories (rolling window) or "
        "a single run's BENCH_*.json (legacy layout)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative change flagged as a regression (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=5,
        help="how many most-recent history runs feed the median baseline "
        "(default 5)",
    )
    args = parser.parse_args(argv)

    current = load_directory(args.current)
    runs = load_history(args.previous, args.window)
    if not current:
        print(f"trend: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 0
    if not runs:
        print("trend: no previous measurements; nothing to compare")
        return 0
    previous = median_baseline(runs)
    print(f"trend: baseline is the median of {len(runs)} run(s)")

    regressions, movements = compare(current, previous, args.threshold)
    for line in movements:
        print(line)
    for line in regressions:
        print(line)
    if regressions:
        print(
            f"trend: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%}"
        )
        write_step_summary(regressions, args.threshold)
        return 1
    print("trend: no regressions past the threshold")
    return 0


def write_step_summary(regressions: List[str], threshold: float) -> None:
    """Surface flagged regressions on the GitHub Actions run summary.

    ``$GITHUB_STEP_SUMMARY`` is a file CI appends markdown to; outside
    Actions (or when the file is unwritable) this is a silent no-op so
    local runs behave identically.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Bench trend: regressions past "
        f"{threshold:.0%} vs the window median",
        "",
    ]
    lines.extend(f"- `{line}`" for line in regressions)
    lines.append("")
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
    except OSError as exc:
        print(f"trend: cannot write step summary: {exc}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
