"""E5 — the static ded-prediction analysis.

Claim (§3): "the system is able to look at the view definitions and
tell whether the rewritten mappings may contain deds or not", plus §4's
"GROM supports this process by highlighting problematic views".  We
measure the analysis cost against the full rewriting cost across the
scenario families, and check the prediction agrees with the actual
rewriting on every one of them.
"""

import time


from repro.core.analysis import predict_deds
from repro.core.rewriter import rewrite
from repro.reporting import Table
from repro.scenarios import (
    build_scenario,
    cleanup_scenario,
    evolution_scenario,
    flagged_scenario,
    partition_scenario,
)

from conftest import print_experiment_table

FAMILIES = [
    ("running", lambda: build_scenario()),
    ("running-nokey", lambda: build_scenario(include_key=False)),
    ("cleanup", cleanup_scenario),
    ("evolution", lambda: evolution_scenario()),
    ("evolution-sd", lambda: evolution_scenario(with_soft_delete=True)),
    ("flagged-3", lambda: flagged_scenario(3)),
    ("partition-4", lambda: partition_scenario(4, class_keys=True)),
    ("partition-4-dk", lambda: partition_scenario(4, default_key=True)),
]


def test_bench_prediction(benchmark):
    scenario = build_scenario()
    prediction = benchmark(predict_deds, scenario)
    assert prediction.may_have_deds


def test_bench_prediction_wide_partition(benchmark):
    scenario = partition_scenario(6, default_key=True)
    prediction = benchmark(predict_deds, scenario)
    assert prediction.may_have_deds


def test_report_e5(benchmark):
    table = Table(
        "E5: static ded prediction vs actual rewriting",
        [
            "scenario",
            "predicted",
            "actual",
            "agrees",
            "problematic views",
            "analysis (s)",
            "rewrite (s)",
        ],
    )
    all_agree = True
    for name, factory in FAMILIES:
        scenario = factory()
        t0 = time.perf_counter()
        prediction = predict_deds(scenario)
        t1 = time.perf_counter()
        result = rewrite(scenario)
        t2 = time.perf_counter()
        agrees = prediction.may_have_deds == result.has_deds
        all_agree &= agrees
        # Soundness must hold regardless of exactness.
        if not prediction.may_have_deds:
            assert not result.has_deds
        table.add(
            name,
            prediction.may_have_deds,
            result.has_deds,
            agrees,
            ", ".join(prediction.problematic_views()) or "-",
            t1 - t0,
            t2 - t1,
        )
    print_experiment_table(table)
    assert all_agree  # exact on every family we ship
