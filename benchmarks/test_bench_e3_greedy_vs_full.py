"""E3 — universal model sets blow up; the greedy ded chase does not.

Claim (§3): "universal model sets may have exponential size wrt to the
size of the source instance" and the greedy strategy tames this by
"running multiple standard scenarios [...] derived from the given
deds".  We scale the number of ded-firing name pairs and compare the
exact disjunctive chase (model count doubles per pair) against the
greedy engine (constant scenario count).
"""

import pytest

from repro.chase.ded import GreedyDedChase
from repro.chase.disjunctive import DisjunctiveChase
from repro.core.rewriter import rewrite
from repro.reporting import Table
from repro.scenarios.generators import flagged_instance, flagged_scenario

from conftest import print_experiment_table

PAIRS = [1, 2, 3, 4, 5]


@pytest.fixture(scope="module")
def flagged_rewritten():
    return rewrite(flagged_scenario(flags=1))


@pytest.mark.parametrize("pairs", [1, 3, 5])
def test_bench_exact_disjunctive(benchmark, flagged_rewritten, pairs):
    source = flagged_instance(products=4, name_pairs=pairs, seed=1)
    engine = DisjunctiveChase(
        flagged_rewritten.dependencies,
        flagged_rewritten.source_relations(),
        max_leaves=4096,
    )
    result = benchmark.pedantic(lambda: engine.run(source), rounds=2, iterations=1)
    assert result.satisfiable
    assert len(result.models) == 2 ** pairs


@pytest.mark.parametrize("pairs", [1, 3, 5])
def test_bench_greedy(benchmark, flagged_rewritten, pairs):
    source = flagged_instance(products=4, name_pairs=pairs, seed=1)
    engine = GreedyDedChase(
        flagged_rewritten.dependencies, flagged_rewritten.source_relations()
    )
    result = benchmark.pedantic(lambda: engine.run(source), rounds=2, iterations=1)
    assert result.ok


def test_report_e3(benchmark, flagged_rewritten):
    table = Table(
        "E3: exact disjunctive chase vs greedy (1 flag key, growing conflicts)",
        [
            "pairs",
            "models (exact)",
            "leaves",
            "branchings",
            "exact time (s)",
            "greedy scenarios",
            "greedy time (s)",
        ],
    )
    model_counts = {}
    for pairs in PAIRS:
        source = flagged_instance(products=4, name_pairs=pairs, seed=1)
        exact = DisjunctiveChase(
            flagged_rewritten.dependencies,
            flagged_rewritten.source_relations(),
            max_leaves=4096,
        ).run(source)
        greedy = GreedyDedChase(
            flagged_rewritten.dependencies, flagged_rewritten.source_relations()
        ).run(source)
        model_counts[pairs] = len(exact.models)
        table.add(
            pairs,
            len(exact.models),
            exact.leaves,
            exact.branchings,
            exact.elapsed_seconds,
            greedy.scenarios_tried,
            greedy.stats.elapsed_seconds,
        )
        assert greedy.ok and exact.satisfiable
    print_experiment_table(table)
    # The paper's shape: exponential model sets (2^k), constant greedy work.
    for pairs in PAIRS:
        assert model_counts[pairs] == 2 ** pairs
