"""E6 — the two-semantic-schema variant reduces to source-to-semantic.

Claim (§3 "Variants of the Problem"): with a source semantic schema,
GROM (i) materializes ``Υ_S(I_S)`` and (ii) solves the remaining
source-to-semantic problem.  We measure the materialization overhead
against the chase itself, and cross-check the alternative strategy
(premise unfolding) produces the same target.
"""

import time


from repro.core.compose import extend_source
from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import Atom, Conjunction, NegatedConjunction
from repro.logic.dependencies import tgd
from repro.logic.terms import Variable
from repro.pipeline import run_scenario
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.reporting import Table

from conftest import print_experiment_table

SIZES = [200, 1000, 3000]


def two_sided_scenario() -> MappingScenario:
    """Source views (incl. negation) feeding target views."""
    x, y = Variable("x"), Variable("y")
    source_schema = Schema("src6")
    source_schema.add_relation("Items", [("id", "int"), ("grade", "int")])
    source_schema.add_relation("Banned", [("id", "int")])
    target_schema = Schema("tgt6")
    target_schema.add_relation("Good", [("id", "int")])

    source_views = ViewProgram(source_schema)
    source_views.define(
        Atom("Eligible", (x,)),
        Conjunction(
            atoms=(Atom("Items", (x, y)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("Banned", (x,)),))),
            ),
        ),
    )
    target_views = ViewProgram(target_schema)
    target_views.define(
        Atom("GoodView", (x,)), Conjunction(atoms=(Atom("Good", (x,)),))
    )
    mapping = tgd(
        Conjunction(atoms=(Atom("Eligible", (x,)),)),
        (Atom("GoodView", (x,)),),
        name="m6",
    )
    return MappingScenario(
        source_schema,
        target_schema,
        [mapping],
        target_views=target_views,
        source_views=source_views,
        name="two-sided",
    )


def make_instance(rows: int) -> Instance:
    scenario = two_sided_scenario()
    instance = Instance(scenario.source_schema)
    for i in range(rows):
        instance.add_row("Items", i, i % 7)
        if i % 5 == 0:
            instance.add_row("Banned", i)
    return instance


def test_bench_materialization(benchmark):
    scenario = two_sided_scenario()
    source = make_instance(1000)
    extended = benchmark(extend_source, scenario, source)
    assert extended.size("Eligible") == 800


def test_bench_full_pipeline_via_materialization(benchmark):
    scenario = two_sided_scenario()
    source = make_instance(1000)
    outcome = benchmark.pedantic(
        lambda: run_scenario(scenario, source, verify=False),
        rounds=3,
        iterations=1,
    )
    assert outcome.ok


def test_report_e6(benchmark):
    table = Table(
        "E6: source-view reduction (materialize) vs premise unfolding",
        [
            "rows",
            "materialize (s)",
            "chase after mat. (s)",
            "unfolded total (s)",
            "targets equal",
        ],
    )
    scenario = two_sided_scenario()
    for rows in SIZES:
        source = make_instance(rows)
        t0 = time.perf_counter()
        extend_source(scenario, source)
        t1 = time.perf_counter()
        via_materialization = run_scenario(scenario, source, verify=False)
        t2 = time.perf_counter()
        via_unfolding = run_scenario(
            scenario, source, verify=False, unfold_source_premises=True
        )
        t3 = time.perf_counter()
        assert via_materialization.ok and via_unfolding.ok
        equal = via_materialization.target == via_unfolding.target
        table.add(rows, t1 - t0, t2 - t1, t3 - t2, equal)
        assert equal
    print_experiment_table(table)
