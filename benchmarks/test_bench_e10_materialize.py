"""E10 — semi-naive vs. from-scratch view materialization.

The rewriter's verification paths materialize ``Υ(I)`` once per
candidate rewriting; the batch runtime does it once per task.  Before
the shared delta engine, every one of those was a cold, from-scratch
evaluation of every rule.  This bench feeds a growing base instance to
a layered-plus-recursive view program in batches and compares

* **scratch** — re-materializing the full program after every batch
  (k cold runs, what ``k`` candidate verifications used to cost), and
* **semi-naive** — one :class:`~repro.datalog.evaluate.SemanticDatabase`
  extended batch by batch, each refresh paying only for the new facts'
  consequences (O(|Δ|) per pass).

The acceptance bar is a ≥3x speedup at the largest size; in practice
the gap widens with the batch count since scratch work is quadratic in
the number of batches while incremental work is linear overall.
"""

import time

from repro.datalog.evaluate import SemanticDatabase, materialize
from repro.datalog.program import ViewProgram
from repro.logic.atoms import Atom, Conjunction
from repro.logic.terms import Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.reporting import Table

from conftest import print_experiment_table, quick_mode, record_bench_json

SIZES = [400, 1_000, 2_000]
QUICK_SIZES = [100, 300]
BATCHES = 16
QUICK_BATCHES = 8
REPEATS = 3

x, y, z = Variable("x"), Variable("y"), Variable("z")


def _schema():
    schema = Schema("e10")
    schema.add_relation("Edge", [("src", "int"), ("dst", "int")])
    schema.add_relation("Label", [("node", "int"), ("tag", "str")])
    return schema


def _program(schema):
    """Three layers: a join view, a recursive closure, a consumer."""
    program = ViewProgram(schema)
    program.define(
        Atom("Tagged", (x, y)),
        Conjunction(atoms=(Atom("Edge", (x, y)), Atom("Label", (x, z)))),
    )
    program.define(
        Atom("Reach", (x, y)), Conjunction(atoms=(Atom("Edge", (x, y)),))
    )
    program.define(
        Atom("Reach", (x, z)),
        Conjunction(atoms=(Atom("Reach", (x, y)), Atom("Edge", (y, z)))),
    )
    program.define(
        Atom("TaggedReach", (x, y)),
        Conjunction(atoms=(Atom("Reach", (x, y)), Atom("Label", (x, z)))),
    )
    return program


def _facts(size):
    """A forest of short chains plus labels: closure stays tractable
    while joins and the recursive fixpoint have real work to do."""
    instance = Instance()
    chain = 8
    for i in range(size):
        block, offset = divmod(i, chain)
        instance.add_row("Edge", block * (chain + 1) + offset, block * (chain + 1) + offset + 1)
        if offset == 0:
            instance.add_row("Label", block * (chain + 1), f"tag{block % 7}")
    return list(instance)


def _batches(facts, count):
    step = max(1, len(facts) // count)
    return [facts[i : i + step] for i in range(0, len(facts), step)]


def _measure_scratch(program, batches):
    start = time.perf_counter()
    grown = Instance()
    for batch in batches:
        for fact in batch:
            grown.add(fact)
        materialize(program, grown)
    return time.perf_counter() - start


def _measure_seminaive(program, batches):
    start = time.perf_counter()
    database = SemanticDatabase(program)
    for batch in batches:
        database.add_facts(batch)
        database.refresh()
    return time.perf_counter() - start


def test_report_e10():
    sizes = QUICK_SIZES if quick_mode() else SIZES
    batch_count = QUICK_BATCHES if quick_mode() else BATCHES
    schema = _schema()
    program = _program(schema)
    table = Table(
        "E10: semi-naive vs from-scratch materialization (batched growth)",
        ["base facts", "batches", "scratch (s)", "semi-naive (s)", "speedup"],
    )
    results = {}
    for size in sizes:
        batches = _batches(_facts(size), batch_count)
        scratch = min(
            _measure_scratch(program, batches) for _ in range(REPEATS)
        )
        seminaive = min(
            _measure_seminaive(program, batches) for _ in range(REPEATS)
        )
        # Same fixpoint either way (the differential suite proves it in
        # depth; this is the bench's own sanity check).
        final = Instance()
        for batch in batches:
            for fact in batch:
                final.add(fact)
        database = SemanticDatabase(program, base=final)
        cold = materialize(program, final)
        for view in program.view_names():
            assert database.instance.facts(view) == cold.facts(view)
        speedup = scratch / seminaive if seminaive > 0 else float("inf")
        results[size] = {
            "scratch_seconds": scratch,
            "seminaive_seconds": seminaive,
            "speedup": speedup,
        }
        table.add(
            size,
            len(batches),
            round(scratch, 4),
            round(seminaive, 4),
            round(speedup, 2),
        )
    print_experiment_table(table)
    record_bench_json(
        "e10_materialize",
        {
            "quick": quick_mode(),
            "batches": batch_count,
            "by_size": {str(k): v for k, v in results.items()},
        },
    )
    largest = sizes[-1]
    # The acceptance bar (3x) is for the full sweep; quick mode's tiny
    # sizes leave fixed per-refresh overheads visible, so CI smoke only
    # guards against the incremental path losing its advantage.
    floor = 1.5 if quick_mode() else 3.0
    assert results[largest]["speedup"] >= floor, results
