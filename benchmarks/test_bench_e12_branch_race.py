"""E12 — branch-raced disjunctive search vs. the serial sweep.

The greedy ded chase walks derived standard scenarios in canonical
selection order until one succeeds; with ``k`` two-branch deds whose
cheap equality branches always fail, the winner is the *last* of the
``2^k`` selections — the paper's "many of the generated scenarios fail
and new ones need to be executed" regime.  Each derived scenario is
dominated by an enumeration-bound triangle join, so the sweep is pure
repeated chase work and racing selections across forked workers
(``ChaseConfig.branch_parallelism``) should approach a workers-fold
speedup.

This experiment runs the sweep serial and raced (process:4), asserts
the results are **bit-identical** — same winning selection, same
scenarios_tried, same target, same aggregate counters — and measures
the speedup.  CI runs the quick sizes and gates the speedup at the
largest one; the 1.5× floor scales by ``min(workers, cpus) / workers``
and is skipped (with an explicit log line) below 2 usable CPUs, where
the race cannot physically beat serial.
"""

import time

from repro.chase.ded import GreedyDedChase
from repro.chase.engine import ChaseConfig
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality
from repro.logic.dependencies import Disjunct, ded, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.reporting import Table

from conftest import (
    parallel_speedup_gate,
    print_experiment_table,
    quick_mode,
    record_bench_json,
)

WORKERS = 4
SPEEDUP_FLOOR = 1.5
DEDS = 4  # 2^4 = 16 derived scenarios; the winner is the last one

# (nodes, edges) of the per-scenario triangle workload: sparse digraphs
# where enumeration dominates (cf. e11), small enough that 16 repeats
# stay CI-friendly.
SIZES = [(500, 4000), (800, 8000), (1200, 16000)]
QUICK_SIZES = [(500, 4000), (800, 8000)]


def _dependencies():
    x, y, z, w = (Variable(n) for n in "xyzw")
    premise = Conjunction(
        atoms=(Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))),
        comparisons=(Comparison("<", x, y), Comparison("<", x, z)),
    )
    out = [tgd(premise, (Atom("Tri", (x, y, z)),), name="triangles")]
    for i in range(DEDS):
        # Branch order puts the equality branch first (no atoms), and
        # the duplicate keys below make it hard-fail — every selection
        # short of all-inserts is a loser the sweep must walk past.
        out.append(
            ded(
                Conjunction(
                    atoms=(Atom(f"K{i}", (x, y)), Atom(f"K{i}", (x, z)))
                ),
                (
                    Disjunct(equalities=(Equality(y, z),)),
                    Disjunct(atoms=(Atom(f"W{i}", (x, y, z, w)),)),
                ),
                name=f"d{i}",
            )
        )
    return out


def _source(nodes: int, edges: int, seed: int = 11) -> Instance:
    import random

    rng = random.Random(seed)
    instance = Instance()
    added = 0
    while added < edges:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b and instance.add(Atom("E", (Constant(a), Constant(b)))):
            added += 1
    for i in range(DEDS):
        instance.add(Atom(f"K{i}", (Constant(1), Constant(10))))
        instance.add(Atom(f"K{i}", (Constant(1), Constant(20))))
    return instance


def _sweep(source: Instance, branch_parallelism: str):
    relations = ("E",) + tuple(f"K{i}" for i in range(DEDS))
    engine = GreedyDedChase(
        _dependencies(),
        relations,
        ChaseConfig(branch_parallelism=branch_parallelism),
    )
    start = time.perf_counter()
    result = engine.run(source)
    return result, time.perf_counter() - start


def test_report_e12():
    table = Table(
        "E12: branch-raced disjunctive search (deterministic winner)",
        ["nodes", "edges", "scenarios", "serial (s)", "raced (s)",
         "speedup", "racing"],
    )
    sizes = QUICK_SIZES if quick_mode() else SIZES
    cpus, effective_workers, floor = parallel_speedup_gate(
        WORKERS, SPEEDUP_FLOOR
    )
    by_size = {}
    last = None
    for nodes, edges in sizes:
        source = _source(nodes, edges)
        serial_result, serial_seconds = _sweep(source, "serial")
        raced_result, raced_seconds = _sweep(source, f"process:{WORKERS}")
        # Racing must never change the result: the winner is decided by
        # canonical selection order, whatever the hardware.
        assert serial_result.ok and raced_result.ok
        assert serial_result.scenarios_tried == 2 ** DEDS
        assert raced_result.scenarios_tried == serial_result.scenarios_tried
        assert raced_result.branch_selection == serial_result.branch_selection
        assert raced_result.target == serial_result.target
        assert (
            raced_result.stats.premise_matches
            == serial_result.stats.premise_matches
        )
        assert (
            raced_result.stats.nulls_created
            == serial_result.stats.nulls_created
        )
        speedup = serial_seconds / raced_seconds if raced_seconds else 0.0
        by_size[f"{nodes}x{edges}"] = {
            "serial_seconds": serial_seconds,
            "raced_seconds": raced_seconds,
            "speedup": speedup,
        }
        last = speedup
        table.add(
            nodes, edges, serial_result.scenarios_tried,
            round(serial_seconds, 4), round(raced_seconds, 4),
            round(speedup, 2), raced_result.branch_racing,
        )
    print_experiment_table(table)
    record_bench_json(
        "e12_branch_race",
        {
            "quick": quick_mode(),
            "workers": WORKERS,
            "cpus": cpus,
            "effective_workers": effective_workers,
            "speedup_floor": floor,
            "deds": DEDS,
            "speedup_asserted": floor is not None,
            "by_size": by_size,
        },
    )
    # The speedup claim needs at least two workers actually racing in
    # parallel; below that the race degrades gracefully (same results,
    # no speedup), so only the determinism half is asserted.
    if floor is None:
        print(
            f"e12 speedup gate SKIPPED: {cpus} usable CPU(s) < 2, the "
            f"branch race cannot beat serial here (measured "
            f"{last:.2f}x; determinism still asserted)"
        )
    else:
        assert last >= floor, (
            f"branch race only {last:.2f}x serial at the largest size "
            f"(wanted >= {floor:.2f}x with {effective_workers} of "
            f"{WORKERS} workers on {cpus} CPUs)"
        )
