"""E9 — satisfaction-probe cost must be independent of relation size.

The restricted chase calls ``exists()`` once per premise match to decide
whether a conclusion already holds.  Before the lazy compiled pipeline,
that probe materialized the complete join and truncated afterwards, so
probe cost grew with the relation being probed and the chase turned
superlinear.  This bench measures the per-probe cost of a chase-style
seeded existence check at growing relation sizes and requires it to stay
flat: the probe is one hash-index key lookup.
"""

import time

from repro.logic.atoms import Atom, Conjunction
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.query import exists
from repro.reporting import Table

from conftest import print_experiment_table, quick_mode, record_bench_json

SIZES = [1_000, 10_000, 100_000]
PROBES = 2_000
QUICK_SIZES = [500, 5_000]
QUICK_PROBES = 500
REPEATS = 3


def _relation_of(size):
    instance = Instance()
    for i in range(size):
        instance.add(
            Atom("T_Product", (Constant(i), Constant(f"name_{i}"), Constant(i % 11)))
        )
    return instance


def _measure_probe_seconds(instance, probes):
    pid, name, store = Variable("pid"), Variable("name"), Variable("store")
    body = Conjunction(atoms=(Atom("T_Product", (pid, name, store)),))
    size = len(instance)
    hits = [
        {pid: Constant(i % size), name: Constant(f"name_{i % size}")}
        for i in range(probes)
    ]
    misses = [
        {pid: Constant(-i - 1), name: Constant("missing")} for i in range(probes)
    ]
    exists(body, instance, seed=hits[0])  # warm plan + index
    best = float("inf")
    for _ in range(REPEATS):  # best-of-N damps scheduler/cache noise
        start = time.perf_counter()
        for seed in hits:
            assert exists(body, instance, seed=seed)
        for seed in misses:
            assert not exists(body, instance, seed=seed)
        best = min(best, (time.perf_counter() - start) / (2 * probes))
    return best


def test_report_e9():
    sizes = QUICK_SIZES if quick_mode() else SIZES
    probes = QUICK_PROBES if quick_mode() else PROBES
    table = Table(
        "E9: exists() probe cost vs relation size",
        ["relation size", "probes", "per-probe (us)"],
    )
    per_probe = {}
    for size in sizes:
        instance = _relation_of(size)
        seconds = _measure_probe_seconds(instance, probes)
        per_probe[size] = seconds
        table.add(size, 2 * probes, round(seconds * 1e6, 3))
    print_experiment_table(table)
    record_bench_json(
        "e9_probe_cost",
        {
            "quick": quick_mode(),
            "probes": 2 * probes,
            "per_probe_seconds": {str(k): v for k, v in per_probe.items()},
        },
    )
    smallest, largest = sizes[0], sizes[-1]
    # O(1) probes: cost at the largest size must not scale with the data.
    # Allow generous noise headroom (dict lookups on a bigger index do
    # miss CPU caches more) — the sizes differ by 100x (10x in quick
    # mode), so even a modest dependence on size blows past the bound.
    assert per_probe[largest] <= per_probe[smallest] * 5 + 5e-6, per_probe
