"""E7 — the expressiveness/complexity trade-off (conjunctive vs negation).

Claim (§1, §4): "the rewriting is fairly straightforward if views are
conjunctive queries [...] Negation is a powerful addition, but it comes
at a cost."  We run the same logical scenario in three view languages —
conjunctive only, negation without key constraints, negation with the
key (deds) — and compare rewriting output size, chase cost, and which
engine is needed.
"""

import time

import pytest

from repro.chase.ded import GreedyDedChase
from repro.chase.engine import StandardChase
from repro.core.rewriter import rewrite
from repro.reporting import Table
from repro.scenarios.running_example import (
    build_scenario,
    build_source_schema,
    build_target_schema,
    generate_source_instance,
)

from conftest import print_experiment_table, quick_mode, record_bench_json


def conjunctive_variant():
    """The running example with the classification flattened into
    conjunctive views over an explicit class-tag column — what a designer
    must do when the view language has no negation (the paper's point:
    expressiveness must be paid for somewhere)."""
    from repro.core.scenario import MappingScenario
    from repro.datalog.program import ViewProgram
    from repro.logic.atoms import Atom, Comparison, Conjunction
    from repro.logic.dependencies import tgd
    from repro.logic.terms import Constant, Variable

    pid, name, store, rating = (
        Variable("pid"),
        Variable("name"),
        Variable("store"),
        Variable("rating"),
    )
    source_schema = build_source_schema()
    target_schema = build_target_schema()
    # The conjunctive variant needs a physical class column: model it as
    # T_Rating(thumbsUp) codes 10/11/12 used as class tags.
    views = ViewProgram(target_schema)
    rid = Variable("rid")
    for code, view_name in (
        (10, "PopularProduct"),
        (11, "AvgProduct"),
        (12, "UnpopularProduct"),
    ):
        views.define(
            Atom(view_name, (pid, name)),
            Conjunction(
                atoms=(
                    Atom("T_Product", (pid, name, store)),
                    Atom("T_Rating", (rid, pid, Constant(code))),
                )
            ),
        )
    product = Atom("S_Product", (pid, name, store, rating))
    mappings = [
        tgd(
            Conjunction(
                atoms=(product,),
                comparisons=(Comparison("<", rating, Constant(2)),),
            ),
            (Atom("UnpopularProduct", (pid, name)),),
            name="m0",
        ),
        tgd(
            Conjunction(
                atoms=(product,),
                comparisons=(
                    Comparison(">=", rating, Constant(2)),
                    Comparison("<", rating, Constant(4)),
                ),
            ),
            (Atom("AvgProduct", (pid, name)),),
            name="m1",
        ),
        tgd(
            Conjunction(
                atoms=(product,),
                comparisons=(Comparison(">=", rating, Constant(4)),),
            ),
            (Atom("PopularProduct", (pid, name)),),
            name="m2",
        ),
    ]
    return MappingScenario(
        source_schema, target_schema, mappings, target_views=views,
        name="conjunctive-variant",
    )


VARIANTS = [
    ("conjunctive", conjunctive_variant, False),
    ("negation, no key", lambda: build_scenario(include_key=False), False),
    ("negation + key", lambda: build_scenario(include_key=True), True),
]


@pytest.mark.parametrize(
    "name,factory",
    [(n, f) for n, f, _expect_ded in VARIANTS],
    ids=[n for n, _f, _e in VARIANTS],
)
def test_bench_rewrite_variants(benchmark, name, factory):
    scenario = factory()
    result = benchmark(rewrite, scenario)
    assert result.dependencies


def test_report_e7(benchmark):
    table = Table(
        "E7: view-language expressiveness vs rewriting & execution cost",
        [
            "view language",
            "deps out",
            "tgds",
            "denials",
            "deds",
            "engine",
            "rewrite (s)",
            "chase (s)",
        ],
    )
    products = 60 if quick_mode() else 300
    source = generate_source_instance(products=products, stores=10, seed=6)
    rows = {}
    for name, factory, expect_ded in VARIANTS:
        scenario = factory()
        t0 = time.perf_counter()
        rewritten = rewrite(scenario)
        t1 = time.perf_counter()
        assert rewritten.has_deds == expect_ded
        if rewritten.has_deds:
            engine_name = "greedy-ded"
            result = GreedyDedChase(
                rewritten.dependencies, rewritten.source_relations()
            ).run(source)
        else:
            engine_name = "standard"
            result = StandardChase(
                rewritten.dependencies, rewritten.source_relations()
            ).run(source)
        t2 = time.perf_counter()
        assert result.ok
        counts = rewritten.counts()
        table.add(
            name,
            len(rewritten.dependencies),
            counts.get("tgd", 0),
            counts.get("denial", 0),
            counts.get("ded", 0),
            engine_name,
            t1 - t0,
            t2 - t1,
        )
        rows[name] = {
            "dependencies": len(rewritten.dependencies),
            "engine": engine_name,
            "rewrite_seconds": t1 - t0,
            "chase_seconds": t2 - t1,
        }
    print_experiment_table(table)
    record_bench_json(
        "e7_tradeoff", {"quick": quick_mode(), "products": products, "rows": rows}
    )
