"""E1 — the Figure-2 pipeline end to end on the running example.

Claim (§2–§3): mappings designed over the semantic schema execute
transparently over the physical databases.  We measure the three stages
separately — rewriting, chase, verification — on the Section 2 scenario.
"""


from repro.chase.ded import GreedyDedChase
from repro.core.rewriter import rewrite
from repro.core.verify import verify_solution
from repro.pipeline import run_scenario, strip_auxiliary
from repro.reporting import Table
from repro.scenarios.running_example import build_scenario, generate_source_instance

from conftest import print_experiment_table


def test_bench_rewriting(benchmark):
    scenario = build_scenario()
    result = benchmark(rewrite, scenario)
    assert result.has_deds and len(result.dependencies) == 10


def test_bench_chase_small(benchmark, running_rewritten):
    source = generate_source_instance(products=50, stores=5, seed=1)

    def run():
        return GreedyDedChase(
            running_rewritten.dependencies, running_rewritten.source_relations()
        ).run(source)

    result = benchmark(run)
    assert result.ok


def test_bench_verification(benchmark):
    scenario = build_scenario()
    source = generate_source_instance(products=50, stores=5, seed=1)
    outcome = run_scenario(scenario, source, verify=False)
    target = strip_auxiliary(outcome.chase.target)

    report = benchmark(verify_solution, scenario, source, target)
    assert report.ok


def test_report_e1(benchmark):
    """The E1 summary table (stage breakdown at a fixed size)."""
    import time

    scenario = build_scenario()
    source = generate_source_instance(products=100, stores=8, seed=1)

    t0 = time.perf_counter()
    rewritten = rewrite(scenario)
    t1 = time.perf_counter()
    chase_result = GreedyDedChase(
        rewritten.dependencies, rewritten.source_relations()
    ).run(source)
    t2 = time.perf_counter()
    target = strip_auxiliary(chase_result.target)
    report = verify_solution(scenario, source, target)
    t3 = time.perf_counter()

    table = Table(
        "E1: pipeline stage breakdown (100 products)",
        ["stage", "time (s)", "output"],
    )
    table.add("rewrite", t1 - t0, f"{len(rewritten.dependencies)} dependencies "
                                  f"(1 ded = d0)")
    table.add("chase", t2 - t1, f"{len(target)} target facts, "
                                f"{chase_result.stats.nulls_created} nulls")
    table.add("verify", t3 - t2, str(report))
    print_experiment_table(table)
    assert chase_result.ok and report.ok
