"""E14 — block probes vs row-at-a-time probes over the columnar store.

The join probe is the heart of the chase's enumerate phase: stream a
binding, look up an index bucket, restrict it to the round's delta,
check repeated-variable equalities, extend the binding from the matched
row's columns.  PR 10 batches that per *block* of candidate row ids —
generated per-step drivers whose inner loop is one list comprehension
over hoisted column locals, with :class:`RowMask` bucket restriction —
while the old row-at-a-time loop stays reachable through
:func:`repro.relational.query.row_probe_mode` as the differential
baseline.

This experiment races the two paths on identical plans and data:

* **fan-out sweep** — a two-step join whose second step touches
  ``fanout`` candidate rows per probe (4 / 16 / 64), with a
  repeated-variable equality check so the column-compare filter runs;
* **delta-restricted** — the chase hot-path shape: the anchor step
  restricted to an insertion window, once contiguous (a fresh
  generation: mask restriction is a bisect slice or bucket identity)
  and once sparse (a sharder-style ``rid % 2`` chunk: span-bounded
  membership).

Both paths must produce identical row streams and identical
``probe_rows``/``probe_survivors`` counters — asserted every section.
CI (quick mode) gates the delta-restricted contiguous section, the
shape every chase round rides, at block ≥ 2× row throughput; the JSON
artifact reports ``rows_per_second`` leaves (higher is better) for the
trend comparison.
"""

import time

from repro.logic.atoms import Atom, Conjunction
from repro.logic.terms import Constant, Variable
from repro.relational.kernel import ColumnarInstance, RowMask, TermPool
from repro.relational.query import compile_query, row_probe_mode
from repro.reporting import Table

from conftest import print_experiment_table, quick_mode, record_bench_json

#: Probes per section (rows of the anchor relation).
PROBES = 40_000
QUICK_PROBES = 6_000
FANOUTS = [4, 16, 64]
QUICK_FANOUTS = [4, 16]
#: CI gate: block probe throughput over row-at-a-time on the
#: delta-restricted (chase hot path) section.
SPEEDUP_FLOOR = 2.0


def _join_store(probes: int, fanout: int) -> ColumnarInstance:
    """R(k, a) with one row per probe key; S(a, b, b) with ``fanout``
    rows per ``a`` — half of them failing the repeated-variable check,
    so the equality filter genuinely culls."""
    store = ColumnarInstance(pool=TermPool())
    r_rows = []
    s_rows = []
    for i in range(probes):
        a = i % (probes // 8 or 1)
        r_rows.append((i, a))
        if i < (probes // 8 or 1):
            for j in range(fanout):
                # Even j: b == c (check passes); odd j: b != c.
                b = i * fanout + j
                c = b if j % 2 == 0 else b + 1
                s_rows.append((i, b, c))
    encode = store.pool.encode
    store.extend_encoded(
        "R", [(encode(Constant(k)), encode(Constant(a))) for k, a in r_rows]
    )
    store.extend_encoded(
        "S",
        [
            (encode(Constant(a)), encode(Constant(b)), encode(Constant(c)))
            for a, b, c in s_rows
        ],
    )
    return store


def _query():
    k, a, b = Variable("k"), Variable("a"), Variable("b")
    return Conjunction(
        atoms=(Atom("R", (k, a)), Atom("S", (a, b, b)))
    )


#: Timed repetitions per mode; the gate uses the best run of each, so a
#: single scheduler hiccup on a loaded CI box cannot fail the ratio.
REPEATS = 3


def _timed_rows(plan, store, delta=None):
    """Fully drain the encoded plan (block-wise); returns (rows,
    best-of-:data:`REPEATS` seconds, probed, survivors) with the
    counters isolated to one evaluation."""
    stats = store.kernel_stats
    seconds = None
    for _ in range(REPEATS):
        probed0, surv0 = stats.probe_rows, stats.probe_survivors
        start = time.perf_counter()
        rows = []
        for block in plan.blocks(store, delta=delta):
            rows += block
        elapsed = time.perf_counter() - start
        if seconds is None or elapsed < seconds:
            seconds = elapsed
    return (
        rows,
        seconds,
        stats.probe_rows - probed0,
        stats.probe_survivors - surv0,
    )


def _race(plan, store, delta=None):
    """Block vs row timing on one plan; asserts identical streams and
    identical counters, returns the section payload."""
    # Build the probed hash indexes up front: both timed runs must
    # measure probing, not the first run's lazy index construction.
    for step in plan.steps:
        store.encoded_index(step.relation, step.positions)
    block_rows, block_seconds, block_probed, block_surv = _timed_rows(
        plan, store, delta
    )
    with row_probe_mode():
        row_rows, row_seconds, row_probed, row_surv = _timed_rows(
            plan, store, delta
        )
    assert block_rows == row_rows
    assert (block_probed, block_surv) == (row_probed, row_surv)
    speedup = row_seconds / block_seconds if block_seconds else 0.0
    return {
        "rows_probed": block_probed,
        "rows_survived": block_surv,
        "block_rows_per_second": (
            block_probed / block_seconds if block_seconds else 0.0
        ),
        "row_rows_per_second": (
            row_probed / row_seconds if row_seconds else 0.0
        ),
        "block_vs_row_speedup": speedup,
    }


def test_report_e14():
    quick = quick_mode()
    probes = QUICK_PROBES if quick else PROBES
    fanouts = QUICK_FANOUTS if quick else FANOUTS
    payload = {"quick": quick, "probes": probes}
    table = Table(
        "E14: block vs row-at-a-time probe throughput",
        ["section", "probed", "block rows/s", "row rows/s", "speedup"],
    )

    # -- fan-out sweep -------------------------------------------------
    by_fanout = {}
    for fanout in fanouts:
        store = _join_store(probes, fanout)
        plan = compile_query(_query()).encoded(store.pool)
        section = _race(plan, store)
        by_fanout[str(fanout)] = section
        table.add(
            f"fanout={fanout}",
            section["rows_probed"],
            round(section["block_rows_per_second"]),
            round(section["row_rows_per_second"]),
            round(section["block_vs_row_speedup"], 2),
        )
    payload["by_fanout"] = by_fanout

    # -- delta-restricted (the chase hot-path shape) -------------------
    # Anchor the plan on R and restrict it to an insertion window, the
    # exact shape of every anchored delta probe in a chase round.
    fanout = fanouts[-1]
    store = _join_store(probes, fanout)
    plan = compile_query(_query(), first_atom=0).encoded(store.pool)
    r_count = store.size("R")
    # Contiguous window: the newest half of R, as after a fresh round.
    contiguous = RowMask(range(r_count // 2, r_count))
    section = _race(plan, store, delta=contiguous)
    payload["delta_contiguous"] = section
    table.add(
        "delta contiguous",
        section["rows_probed"],
        round(section["block_rows_per_second"]),
        round(section["row_rows_per_second"]),
        round(section["block_vs_row_speedup"], 2),
    )
    # Sparse window: a rid % 2 chunk, as a 2-worker sharder hands out.
    sparse = RowMask({r for r in range(r_count) if r % 2 == 0})
    sparse_section = _race(plan, store, delta=sparse)
    payload["delta_sparse"] = sparse_section
    table.add(
        "delta sparse",
        sparse_section["rows_probed"],
        round(sparse_section["block_rows_per_second"]),
        round(sparse_section["row_rows_per_second"]),
        round(sparse_section["block_vs_row_speedup"], 2),
    )

    print_experiment_table(table)
    record_bench_json("e14_probe", payload)
    # The tentpole's headline: on the shape every chase round rides
    # (anchored probe over a contiguous insertion window), block probes
    # must hold >= 2x the row-at-a-time loop they replaced.
    gated = section["block_vs_row_speedup"]
    assert gated >= SPEEDUP_FLOOR, (
        f"block probes only {gated:.2f}x row-at-a-time on the "
        f"delta-restricted hot path (wanted >= {SPEEDUP_FLOOR}x); "
        f"{payload['delta_contiguous']}"
    )
