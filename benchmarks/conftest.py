"""Shared helpers for the experiment benchmarks (E1–E7).

Each benchmark module reproduces one experiment from DESIGN.md §4 and
prints the table EXPERIMENTS.md records.  ``pytest benchmarks/
--benchmark-only`` runs them; the printed tables appear with ``-s`` (or
in the captured output section).
"""

from __future__ import annotations

import pytest

from repro.core.rewriter import rewrite
from repro.scenarios.running_example import build_scenario


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ so CI can deselect it.

    The hook sees the whole session's items, so filter by path — items
    inside *this* conftest's directory get the ``bench`` marker (a bare
    substring test would misfire on checkouts whose path happens to
    contain "benchmarks").
    """
    import pathlib

    here = pathlib.Path(__file__).parent.resolve()
    for item in items:
        if here in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def running_rewritten():
    return rewrite(build_scenario())


@pytest.fixture(scope="session")
def running_rewritten_no_key():
    return rewrite(build_scenario(include_key=False))


def print_experiment_table(table) -> None:
    """Emit an experiment table so it survives pytest's capture."""
    import sys

    print()
    print(table.render())
    sys.stdout.flush()


def quick_mode() -> bool:
    """Whether the bench suite runs in CI smoke mode.

    ``GROM_BENCH_QUICK=1`` shrinks workloads to a single small round per
    experiment so CI can track the perf trajectory on every PR without
    paying for the full sweep.
    """
    import os

    return os.environ.get("GROM_BENCH_QUICK", "") not in ("", "0")


def parallel_speedup_gate(workers: int, base_floor: float):
    """The speedup floor a parallel bench may honestly assert here.

    Returns ``(cpus, effective_workers, floor)``.  ``floor`` is the
    base floor scaled by ``min(workers, cpus) / workers`` — a 4-worker
    bench on a 2-CPU runner can at best halve its wall clock, so
    holding it to the 4-CPU floor measured runner shape, not
    parallelism (the recorded e11/e12 bug: the 1-CPU CI runner ran the
    parallel tiers *below* 1x serial against a >= 1.5x assert).  The
    floor never drops below 1.1 (parallel must still beat serial by a
    margin), and is ``None`` below 2 usable CPUs, where no speedup is
    physically possible — callers must then log an explicit skip line
    and assert only determinism.
    """
    import os

    cpus = os.cpu_count() or 1
    effective = min(workers, cpus)
    if effective < 2:
        return cpus, effective, None
    return cpus, effective, max(1.1, base_floor * effective / workers)


def record_bench_json(name: str, payload) -> None:
    """Write ``BENCH_<name>.json`` for the CI artifact upload.

    ``GROM_BENCH_DIR`` overrides the output directory (default: cwd).
    Payloads are plain dicts of experiment measurements; CI uploads every
    ``BENCH_*.json`` so the perf trajectory is inspectable per PR.
    """
    import json
    import os

    directory = os.environ.get("GROM_BENCH_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
