"""Shared helpers for the experiment benchmarks (E1–E7).

Each benchmark module reproduces one experiment from DESIGN.md §4 and
prints the table EXPERIMENTS.md records.  ``pytest benchmarks/
--benchmark-only`` runs them; the printed tables appear with ``-s`` (or
in the captured output section).
"""

from __future__ import annotations

import pytest

from repro.core.rewriter import rewrite
from repro.scenarios.running_example import build_scenario


@pytest.fixture(scope="session")
def running_rewritten():
    return rewrite(build_scenario())


@pytest.fixture(scope="session")
def running_rewritten_no_key():
    return rewrite(build_scenario(include_key=False))


def print_experiment_table(table) -> None:
    """Emit an experiment table so it survives pytest's capture."""
    import sys

    print()
    print(table.render())
    sys.stdout.flush()
