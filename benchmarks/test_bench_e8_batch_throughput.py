"""E8: batch throughput — scenarios/sec, serial vs. pooled vs. cached.

The batch runtime's three execution shapes over one corpus:

* **serial-cold** — one process, no rewrite cache: the baseline the
  single-scenario CLI would give you, times N;
* **pooled** — the multiprocessing executor (only expected to win
  wall-clock when the machine actually has more than one core; the
  assertion is gated on that, the measurement is always printed);
* **serial-warm** — repeat run over a disk-backed rewrite cache: every
  scenario fingerprint hits, zero rewrites re-execute.
"""

from __future__ import annotations

import os

from conftest import print_experiment_table

from repro.reporting import Table
from repro.runtime.corpus import Corpus, spec
from repro.runtime.executor import BatchOptions, run_batch

# At least 2 so the pool machinery is always exercised; the wall-clock
# win is only asserted when the hardware can actually parallelize.
POOL_JOBS = max(2, min(4, os.cpu_count() or 1))


def _throughput_corpus() -> Corpus:
    """Heavy-enough tasks that pool dispatch overhead amortizes."""
    specs = tuple(
        spec("flagged", flags=2, products=20, name_pairs=2, seed=seed)
        for seed in range(8)
    ) + tuple(
        spec("partition", width=4, default_key=True, items=24,
             duplicate_names=1, seed=seed)
        for seed in range(4)
    )
    return Corpus("e8-throughput", "batch throughput workload", specs)


def test_report_e8(tmp_path):
    corpus = _throughput_corpus()
    cache_dir = str(tmp_path / "rewrite-cache")

    serial = run_batch(corpus, BatchOptions(jobs=1, use_cache=False))
    pooled = run_batch(corpus, BatchOptions(jobs=POOL_JOBS, use_cache=False))
    cold = run_batch(corpus, BatchOptions(jobs=1, cache_dir=cache_dir))
    warm = run_batch(corpus, BatchOptions(jobs=1, cache_dir=cache_dir))

    table = Table(
        f"E8: batch throughput over {len(corpus)} scenarios "
        f"(cpus={os.cpu_count()})",
        ["mode", "wall s", "scen/s", "rewrite s", "cache hit rate"],
    )
    for name, report in (
        ("serial-cold", serial),
        (f"pooled-x{pooled.jobs}", pooled),
        ("serial-cache-cold", cold),
        ("serial-cache-warm", warm),
    ):
        summary = report.summary
        table.add(
            name,
            summary.wall_seconds,
            summary.scenarios_per_second,
            summary.rewrite_seconds,
            summary.cache_hit_rate,
        )
    print_experiment_table(table)

    for report in (serial, pooled, cold, warm):
        assert report.summary.clean
        assert report.summary.total == len(corpus)

    # The warm cache must replay every rewriting: 100% hits, no rewrite
    # re-executed (what remains of rewrite_seconds is decode time).
    assert warm.summary.cache_hit_rate == 1.0
    assert all(record.cache_hit for record in warm.records)
    assert [r.status for r in warm.records] == [r.status for r in serial.records]

    # The pool can only beat serial wall-clock given real parallel
    # hardware; on a single-core box it still must degrade gracefully.
    if (os.cpu_count() or 1) > 1 and pooled.mode == "pool":
        assert pooled.wall_seconds < serial.wall_seconds
