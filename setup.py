"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs fail) can still do ``python setup.py develop`` / legacy
``pip install -e .``.
"""

from setuptools import setup

setup()
